"""Data-volume and FLOP estimation for kernel launches.

Bridges static analysis and the performance model: given a kernel's access
summary and one concrete launch (grid/block plus actual scalar arguments),
estimate

* the active iteration domain (thread guards × sequential loop trips),
* unique elements touched per array (→ off-chip traffic), and
* total floating-point operations.

Guards of the canonical stencil form (``i >= 1 && i < nx - 1``) are
evaluated against the launch's scalar environment; anything unrecognized
falls back conservatively to the full thread lattice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..cudalite import ast_nodes as ast
from ..errors import AnalysisError
from .accesses import KernelAccesses, StatementAccess, collect_accesses

Number = float


def eval_scalar_expr(expr: ast.Expr, env: Mapping[str, Number]) -> Optional[Number]:
    """Evaluate an expression over scalar parameters; None if not constant."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.Ident):
        value = env.get(expr.name)
        return value if isinstance(value, (int, float)) else None
    if isinstance(expr, ast.Unary) and expr.op == "-":
        value = eval_scalar_expr(expr.operand, env)
        return None if value is None else -value
    if isinstance(expr, ast.Binary):
        lhs = eval_scalar_expr(expr.lhs, env)
        rhs = eval_scalar_expr(expr.rhs, env)
        if lhs is None or rhs is None:
            return None
        try:
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            if expr.op == "/":
                if rhs == 0:
                    return None
                if isinstance(lhs, int) and isinstance(rhs, int):
                    return int(lhs / rhs)
                return lhs / rhs
        except (TypeError, ZeroDivisionError):  # pragma: no cover - defensive
            return None
    return None


@dataclass
class AxisBounds:
    """Half-open active range of one thread-mapped index variable."""

    lo: int
    hi: int

    @property
    def extent(self) -> int:
        return max(0, self.hi - self.lo)


def _decompose_conjunction(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.Binary) and expr.op == "&&":
        return _decompose_conjunction(expr.lhs) + _decompose_conjunction(expr.rhs)
    return [expr]


def extract_guard_bounds(
    kernel: ast.KernelDef,
    index_vars: Mapping[str, str],
    env: Mapping[str, Number],
    lattice: Mapping[str, int],
) -> Dict[str, AxisBounds]:
    """Derive per-index-variable active ranges from the kernel's top guards.

    Walks conditions of ``if`` statements that dominate the kernel body
    (i.e. ifs at statement level, not inside loops) and intersects the
    recognized comparisons.  ``lattice`` maps each axis variable to its full
    thread extent.
    """
    bounds = {var: AxisBounds(0, lattice.get(var, 1)) for var in index_vars}

    def apply(cond: ast.Expr) -> None:
        for atom in _decompose_conjunction(cond):
            if not isinstance(atom, ast.Binary):
                continue
            lhs, rhs, op = atom.lhs, atom.rhs, atom.op
            var: Optional[str] = None
            value: Optional[Number] = None
            flipped = False
            if isinstance(lhs, ast.Ident) and lhs.name in bounds:
                var = lhs.name
                value = eval_scalar_expr(rhs, env)
            elif isinstance(rhs, ast.Ident) and rhs.name in bounds:
                var = rhs.name
                value = eval_scalar_expr(lhs, env)
                flipped = True
            if var is None or value is None:
                continue
            value = int(value)
            b = bounds[var]
            effective = {
                ("<", False): ("hi", value),
                ("<=", False): ("hi", value + 1),
                (">", False): ("lo", value + 1),
                (">=", False): ("lo", value),
                ("<", True): ("lo", value + 1),
                ("<=", True): ("lo", value),
                (">", True): ("hi", value),
                (">=", True): ("hi", value + 1),
                ("==", False): ("eq", value),
                ("==", True): ("eq", value),
            }.get((op, flipped))
            if effective is None:
                continue
            kind, v = effective
            if kind == "hi":
                b.hi = min(b.hi, v)
            elif kind == "lo":
                b.lo = max(b.lo, v)
            else:  # equality pins the axis to one plane
                b.lo = max(b.lo, v)
                b.hi = min(b.hi, v + 1)

    def visit(stmts: Iterable[ast.Stmt]) -> None:
        items = list(stmts)
        # A guard dominating the whole body: single if wrapping everything.
        non_decl = [s for s in items if not isinstance(s, ast.VarDecl)]
        if len(non_decl) == 1 and isinstance(non_decl[0], ast.If) and non_decl[0].els is None:
            guard = non_decl[0]
            apply(guard.cond)
            visit(guard.then.stmts)

    visit(kernel.body.stmts)
    return bounds


@dataclass
class LaunchVolume:
    """Estimated data volume and work of one kernel launch."""

    kernel_name: str
    #: Active threads (product of guarded axis extents).
    active_threads: int
    #: Total threads launched.
    launched_threads: int
    #: Unique grid points touched per array (incl. sequential loops).
    points_per_array: Dict[str, int] = field(default_factory=dict)
    #: Arrays read / written (global-memory footprint).
    arrays_read: Set[str] = field(default_factory=set)
    arrays_written: Set[str] = field(default_factory=set)
    #: Total floating-point operations.
    flops: float = 0.0
    #: Elementsize in bytes (double precision throughout the evaluation).
    itemsize: int = 8

    def bytes_read(self, redundancy: Mapping[str, float] = ()) -> float:
        factors = dict(redundancy) if redundancy else {}
        return sum(
            self.points_per_array.get(a, 0) * self.itemsize * factors.get(a, 1.0)
            for a in self.arrays_read
        )

    def bytes_written(self) -> float:
        return sum(
            self.points_per_array.get(a, 0) * self.itemsize
            for a in self.arrays_written
        )


def _loop_trip(
    loop_var: str,
    acc: KernelAccesses,
    env: Mapping[str, Number],
) -> int:
    for loop in acc.loops:
        if loop.var != loop_var:
            continue
        start = eval_scalar_expr(loop.start, env)
        bound = eval_scalar_expr(loop.bound, env)
        step = eval_scalar_expr(loop.step, env)
        if start is None or bound is None or not step:
            return 1
        end = bound + 1 if loop.cmp == "<=" else bound
        return max(0, -(-(int(end) - int(start)) // int(step)))
    return 1


def estimate_volume(
    kernel: ast.KernelDef,
    grid: Tuple[int, int, int],
    block: Tuple[int, int, int],
    scalar_env: Mapping[str, Number],
    accesses: Optional[KernelAccesses] = None,
) -> LaunchVolume:
    """Estimate the launch's active domain, per-array footprint and FLOPs."""
    acc = accesses if accesses is not None else collect_accesses(kernel)
    extents = {
        "x": grid[0] * block[0],
        "y": grid[1] * block[1],
        "z": grid[2] * block[2],
    }
    lattice = {var: extents[axis] for var, axis in acc.index_vars.items()}
    bounds = extract_guard_bounds(kernel, acc.index_vars, scalar_env, lattice)

    # Collapse aliases: several variables can map to one axis; the axis is
    # constrained by the intersection of its variables' bounds.
    axis_extent: Dict[str, int] = dict(extents)
    for var, axis in acc.index_vars.items():
        axis_extent[axis] = min(axis_extent[axis], bounds[var].extent)
    active_threads = max(
        0, axis_extent.get("x", 1) * axis_extent.get("y", 1) * axis_extent.get("z", 1)
    )
    launched = extents["x"] * extents["y"] * extents["z"]

    points_per_array: Dict[str, int] = {}
    flops = 0.0
    for stmt in acc.statements:
        trips = 1
        for loop_var in stmt.loop_context:
            trips *= _loop_trip(loop_var, acc, scalar_env)
        stmt_points = active_threads * trips
        flops += stmt.flops * stmt_points
        for name in stmt.arrays_read | stmt.arrays_written:
            points_per_array[name] = max(points_per_array.get(name, 0), stmt_points)

    arrays_read = acc.arrays_read
    arrays_written = acc.arrays_written
    # Restrict to global arrays (pointer params); shared tiles are excluded
    pointer_params = {p.name for p in kernel.pointer_params()}
    return LaunchVolume(
        kernel_name=kernel.name,
        active_threads=active_threads,
        launched_threads=launched,
        points_per_array={
            k: v for k, v in points_per_array.items() if k in pointer_params
        },
        arrays_read=arrays_read & pointer_params,
        arrays_written=arrays_written & pointer_params,
        flops=flops,
    )


def bind_scalars(
    kernel: ast.KernelDef, scalar_args: Tuple
) -> Dict[str, Number]:
    """Map the kernel's scalar parameter names to actual launch values."""
    names = [p.name for p in kernel.scalar_params()]
    if len(names) != len(scalar_args):
        raise AnalysisError(
            f"kernel {kernel.name!r}: {len(names)} scalar params but "
            f"{len(scalar_args)} scalar args recorded"
        )
    return dict(zip(names, scalar_args))

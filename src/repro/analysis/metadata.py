"""The three metadata files of the transformation (§3.2.1).

Stage one of the pipeline emits *performance*, *operations* and *device*
metadata as plain text files that the programmer can inspect and amend
before passing them to later stages — exactly the intervention surface the
paper describes.  This module defines the in-memory containers and the
text round-trip.

File format: a simple sectioned key/value layout (``[kernel <name>]`` /
``key = value``) chosen for hand-editability.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Set, Tuple

from typing import TYPE_CHECKING

from ..errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (gpu -> analysis)
    from ..gpu.device import DeviceSpec


@dataclass
class KernelPerformance:
    """Performance metadata for one kernel (profiling-run output)."""

    kernel: str
    invocations: int
    runtime_s: float
    gflops: float
    effective_bandwidth_gbs: float
    shared_mem_per_block: int
    regs_per_thread: int
    active_threads: int
    active_blocks_per_sm: int
    occupancy: float
    flops: float
    bytes_moved: float
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]


@dataclass
class KernelOperations:
    """Operations metadata for one kernel (static-analysis output)."""

    kernel: str
    #: Stencil shape label per array, e.g. ``{"B": "star-5pt-r1"}``.
    stencil_shapes: Dict[str, str] = field(default_factory=dict)
    #: Per-array halo radius.
    radius: Dict[str, int] = field(default_factory=dict)
    #: Arrays read / written (actual host array names).
    arrays_read: List[str] = field(default_factory=list)
    arrays_written: List[str] = field(default_factory=list)
    #: Arrays also touched by at least one other kernel.
    shared_arrays: List[str] = field(default_factory=list)
    #: FLOPs attributable to each array's statements.
    flops_per_array: Dict[str, float] = field(default_factory=dict)
    #: Loop sizes (trip counts; -1 when not statically constant).
    loop_sizes: Dict[str, int] = field(default_factory=dict)
    loop_depth: int = 0
    #: Unit access stride along the thread-mapped dimension.
    unit_stride: bool = True
    irregular: bool = False
    uses_shared_memory: bool = False
    #: Fraction of launched threads that are active (boundary kernels are
    #: characterized by a small fraction / pinned axes).
    active_fraction: float = 1.0
    #: Whether the kernel has separable data arrays (fission candidates).
    fissionable: bool = False
    #: FLOPs per active point (operational-intensity numerator density).
    flops_per_point: float = 0.0


@dataclass
class ProgramMetadata:
    """Aggregate of the three metadata files plus the launch trace."""

    device: "DeviceSpec"
    performance: Dict[str, KernelPerformance] = field(default_factory=dict)
    operations: Dict[str, KernelOperations] = field(default_factory=dict)
    #: Launch order: (kernel, host array args in param order, grid, block,
    #: scalar argument values in param order).
    launch_order: List[
        Tuple[
            str,
            Tuple[str, ...],
            Tuple[int, int, int],
            Tuple[int, int, int],
            Tuple[float, ...],
        ]
    ] = field(default_factory=list)
    #: Host array shapes.
    array_shapes: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------ queries

    def kernels(self) -> List[str]:
        return sorted(self.performance)

    def total_runtime_s(self) -> float:
        return sum(
            p.runtime_s * p.invocations for p in self.performance.values()
        )

    def arrays(self) -> Set[str]:
        return set(self.array_shapes)

    # ---------------------------------------------------------------- file IO

    def write(self, directory: str | Path) -> None:
        """Write the three metadata files into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "performance.meta").write_text(self._perf_text())
        (directory / "operations.meta").write_text(self._ops_text())
        (directory / "device.meta").write_text(self._device_text())

    def _perf_text(self) -> str:
        lines = ["# performance metadata (one section per kernel)"]
        for name in sorted(self.performance):
            p = self.performance[name]
            lines.append(f"[kernel {name}]")
            lines.append(f"invocations = {p.invocations}")
            lines.append(f"runtime_s = {p.runtime_s!r}")
            lines.append(f"gflops = {p.gflops!r}")
            lines.append(f"effective_bandwidth_gbs = {p.effective_bandwidth_gbs!r}")
            lines.append(f"shared_mem_per_block = {p.shared_mem_per_block}")
            lines.append(f"regs_per_thread = {p.regs_per_thread}")
            lines.append(f"active_threads = {p.active_threads}")
            lines.append(f"active_blocks_per_sm = {p.active_blocks_per_sm}")
            lines.append(f"occupancy = {p.occupancy!r}")
            lines.append(f"flops = {p.flops!r}")
            lines.append(f"bytes_moved = {p.bytes_moved!r}")
            lines.append(f"grid = {p.grid[0]} {p.grid[1]} {p.grid[2]}")
            lines.append(f"block = {p.block[0]} {p.block[1]} {p.block[2]}")
            lines.append("")
        return "\n".join(lines) + "\n"

    def _ops_text(self) -> str:
        lines = ["# operations metadata (one section per kernel)"]
        for name in sorted(self.operations):
            o = self.operations[name]
            lines.append(f"[kernel {name}]")
            lines.append(f"stencil_shapes = {json.dumps(o.stencil_shapes)}")
            lines.append(f"radius = {json.dumps(o.radius)}")
            lines.append(f"arrays_read = {json.dumps(o.arrays_read)}")
            lines.append(f"arrays_written = {json.dumps(o.arrays_written)}")
            lines.append(f"shared_arrays = {json.dumps(o.shared_arrays)}")
            lines.append(f"flops_per_array = {json.dumps(o.flops_per_array)}")
            lines.append(f"loop_sizes = {json.dumps(o.loop_sizes)}")
            lines.append(f"loop_depth = {o.loop_depth}")
            lines.append(f"unit_stride = {o.unit_stride}")
            lines.append(f"irregular = {o.irregular}")
            lines.append(f"uses_shared_memory = {o.uses_shared_memory}")
            lines.append(f"active_fraction = {o.active_fraction!r}")
            lines.append(f"fissionable = {o.fissionable}")
            lines.append(f"flops_per_point = {o.flops_per_point!r}")
            lines.append("")
        lines.append("[launch_order]")
        for kernel, args, grid, block, scalars in self.launch_order:
            lines.append(
                "launch = "
                + json.dumps([kernel, list(args), list(grid), list(block), list(scalars)])
            )
        lines.append("")
        lines.append("[arrays]")
        for name in sorted(self.array_shapes):
            lines.append(f"{name} = {json.dumps(list(self.array_shapes[name]))}")
        return "\n".join(lines) + "\n"

    def _device_text(self) -> str:
        payload = asdict(self.device)
        lines = ["# device metadata (deviceQuery output)", "[device]"]
        for key, value in payload.items():
            lines.append(f"{key} = {value!r}")
        return "\n".join(lines) + "\n"

    @classmethod
    def read(cls, directory: str | Path) -> "ProgramMetadata":
        """Parse the three metadata files back (after possible hand edits)."""
        directory = Path(directory)
        device = _parse_device((directory / "device.meta").read_text())
        meta = cls(device=device)
        _parse_perf((directory / "performance.meta").read_text(), meta)
        _parse_ops((directory / "operations.meta").read_text(), meta)
        return meta


def _sections(text: str) -> List[Tuple[str, Dict[str, str]]]:
    sections: List[Tuple[str, Dict[str, str]]] = []
    current: Optional[Dict[str, str]] = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            current = {}
            sections.append((line[1:-1], current))
            continue
        if current is None or "=" not in line:
            raise AnalysisError(f"malformed metadata line: {raw!r}")
        key, _, value = line.partition("=")
        existing = current.get(key.strip())
        if existing is not None and key.strip() == "launch":
            current[key.strip()] = existing + "\x00" + value.strip()
        else:
            current[key.strip()] = value.strip()
    return sections


def _parse_device(text: str) -> "DeviceSpec":
    for header, kv in _sections(text):
        if header == "device":
            from ..gpu.device import DeviceSpec

            fields = {}
            for key, value in kv.items():
                fields[key] = eval(value, {"__builtins__": {}})  # literals only
            return DeviceSpec(**fields)
    raise AnalysisError("device.meta has no [device] section")


def _parse_perf(text: str, meta: ProgramMetadata) -> None:
    for header, kv in _sections(text):
        if not header.startswith("kernel "):
            continue
        name = header[len("kernel ") :]
        grid = tuple(int(v) for v in kv["grid"].split())
        block = tuple(int(v) for v in kv["block"].split())
        meta.performance[name] = KernelPerformance(
            kernel=name,
            invocations=int(kv["invocations"]),
            runtime_s=float(kv["runtime_s"]),
            gflops=float(kv["gflops"]),
            effective_bandwidth_gbs=float(kv["effective_bandwidth_gbs"]),
            shared_mem_per_block=int(kv["shared_mem_per_block"]),
            regs_per_thread=int(kv["regs_per_thread"]),
            active_threads=int(kv["active_threads"]),
            active_blocks_per_sm=int(kv["active_blocks_per_sm"]),
            occupancy=float(kv["occupancy"]),
            flops=float(kv["flops"]),
            bytes_moved=float(kv["bytes_moved"]),
            grid=grid,  # type: ignore[arg-type]
            block=block,  # type: ignore[arg-type]
        )


def _parse_bool(value: str) -> bool:
    return value.strip() in ("True", "true", "1")


def _parse_ops(text: str, meta: ProgramMetadata) -> None:
    for header, kv in _sections(text):
        if header.startswith("kernel "):
            name = header[len("kernel ") :]
            meta.operations[name] = KernelOperations(
                kernel=name,
                stencil_shapes=json.loads(kv["stencil_shapes"]),
                radius={k: int(v) for k, v in json.loads(kv["radius"]).items()},
                arrays_read=json.loads(kv["arrays_read"]),
                arrays_written=json.loads(kv["arrays_written"]),
                shared_arrays=json.loads(kv["shared_arrays"]),
                flops_per_array=json.loads(kv["flops_per_array"]),
                loop_sizes={k: int(v) for k, v in json.loads(kv["loop_sizes"]).items()},
                loop_depth=int(kv["loop_depth"]),
                unit_stride=_parse_bool(kv["unit_stride"]),
                irregular=_parse_bool(kv["irregular"]),
                uses_shared_memory=_parse_bool(kv["uses_shared_memory"]),
                active_fraction=float(kv["active_fraction"]),
                fissionable=_parse_bool(kv["fissionable"]),
                flops_per_point=float(kv["flops_per_point"]),
            )
        elif header == "launch_order":
            launches = kv.get("launch", "")
            for chunk in launches.split("\x00"):
                if not chunk:
                    continue
                entry = json.loads(chunk)
                kernel, args, grid, block = entry[:4]
                scalars = entry[4] if len(entry) > 4 else []
                meta.launch_order.append(
                    (kernel, tuple(args), tuple(grid), tuple(block), tuple(scalars))
                )
        elif header == "arrays":
            for name, value in kv.items():
                meta.array_shapes[name] = tuple(json.loads(value))

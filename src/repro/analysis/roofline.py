"""Roofline-model classification of kernels (§3.2.2).

The framework excludes compute-bound kernels from the fusion search: they do
not benefit from inter-kernel data reuse but inflate the search space.  A
kernel is compute-bound when its operational intensity (FLOPs per byte of
off-chip traffic) exceeds the device's *ridge point*
``peak_flops / peak_bandwidth`` [Williams et al., the Roofline model].
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import DeviceSpec


@dataclass(frozen=True)
class RooflinePoint:
    """A kernel's position on the roofline."""

    kernel_name: str
    flops: float
    bytes_moved: float
    operational_intensity: float
    ridge_point: float
    bound: str  # 'memory' or 'compute'

    @property
    def is_compute_bound(self) -> bool:
        return self.bound == "compute"


def ridge_point(device: DeviceSpec, precision: str = "double") -> float:
    """Operational intensity at which the device turns compute-bound."""
    peak = (
        device.peak_gflops_dp if precision == "double" else device.peak_gflops_sp
    )
    return peak / device.peak_bandwidth_gbs


def classify(
    kernel_name: str,
    flops: float,
    bytes_moved: float,
    device: DeviceSpec,
    precision: str = "double",
) -> RooflinePoint:
    """Place a kernel on the roofline and classify its bound.

    ``bytes_moved`` of zero (a pathological kernel that touches no global
    data) classifies as compute-bound: it cannot benefit from locality.
    """
    if bytes_moved <= 0:
        intensity = float("inf")
    else:
        intensity = flops / bytes_moved
    ridge = ridge_point(device, precision)
    bound = "compute" if intensity >= ridge else "memory"
    return RooflinePoint(
        kernel_name=kernel_name,
        flops=flops,
        bytes_moved=bytes_moved,
        operational_intensity=intensity,
        ridge_point=ridge,
        bound=bound,
    )


def attainable_gflops(
    intensity: float, device: DeviceSpec, precision: str = "double"
) -> float:
    """Roofline ceiling: ``min(peak, intensity * bandwidth)`` in GFLOP/s."""
    peak = (
        device.peak_gflops_dp if precision == "double" else device.peak_gflops_sp
    )
    return min(peak, intensity * device.peak_bandwidth_gbs)

"""Array-access analysis for CudaLite kernels.

This is the static-analysis half of the paper's metadata-gathering stage:
it recovers, for each kernel,

* the *global index variables* (e.g. ``int i = blockIdx.x*blockDim.x +
  threadIdx.x``) and which CUDA axis each maps to,
* the sequential loop variables and their bounds,
* for every device array: the set of read and written offsets relative to
  the index variables (the stencil's footprint),
* per-statement read/write sets (consumed by the fission dependency
  analysis), and
* floating-point operation counts per statement and per array.

Accesses whose subscripts are not of the affine ``var ± const`` form are
flagged *irregular*; the paper's Limitations section excludes such kernels
from transformation and so do we (they pass through as no-fusion kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..cudalite import ast_nodes as ast

#: An index term: (base variable name or None for constant, constant offset).
IndexTerm = Tuple[Optional[str], int]

#: Sentinel base for subscripts that are not affine in a single variable.
IRREGULAR = "<irregular>"


def _match_global_index(expr: ast.Expr) -> Optional[str]:
    """Return the CUDA axis if ``expr`` is ``blockIdx.a*blockDim.a + threadIdx.a``.

    All commutative arrangements are recognized, as is a bare
    ``threadIdx.a`` (single-block kernels).
    """

    def axis_of(node: ast.Expr, names: Tuple[str, ...]) -> Optional[str]:
        if (
            isinstance(node, ast.Member)
            and isinstance(node.obj, ast.Ident)
            and node.obj.name in names
        ):
            return node.field_name
        return None

    if isinstance(expr, ast.Member):
        return axis_of(expr, ("threadIdx",))
    if not (isinstance(expr, ast.Binary) and expr.op == "+"):
        return None
    sides = (expr.lhs, expr.rhs)
    for tid_side, prod_side in (sides, sides[::-1]):
        tid_axis = axis_of(tid_side, ("threadIdx",))
        if tid_axis is None:
            continue
        if not (isinstance(prod_side, ast.Binary) and prod_side.op == "*"):
            continue
        factors = (prod_side.lhs, prod_side.rhs)
        for a, b in (factors, factors[::-1]):
            bid = axis_of(a, ("blockIdx",))
            bdim = axis_of(b, ("blockDim",))
            if bid is not None and bdim is not None and bid == bdim == tid_axis:
                return tid_axis
    return None


def find_global_index_vars(kernel: ast.KernelDef) -> Dict[str, str]:
    """Map local variable names to the CUDA axis they index (``x``/``y``/``z``).

    Handles one level of aliasing (``int i = tx;`` where ``tx`` is itself a
    global index variable).
    """
    result: Dict[str, str] = {}
    for node in kernel.body.walk():
        if isinstance(node, ast.VarDecl) and node.init is not None:
            axis = _match_global_index(node.init)
            if axis is not None:
                result[node.name] = axis
            elif isinstance(node.init, ast.Ident) and node.init.name in result:
                result[node.name] = result[node.init.name]
    return result


@dataclass(frozen=True)
class LoopInfo:
    """A sequential loop inside a kernel."""

    var: str
    start: ast.Expr
    cmp: str
    bound: ast.Expr
    step: ast.Expr
    depth: int


def find_loops(kernel: ast.KernelDef) -> List[LoopInfo]:
    """All counted loops in the kernel body with their nesting depth."""
    loops: List[LoopInfo] = []

    def visit(stmt: ast.Stmt, depth: int) -> None:
        if isinstance(stmt, ast.For):
            loops.append(
                LoopInfo(stmt.var, stmt.start, stmt.cmp, stmt.bound, stmt.step, depth)
            )
            for inner in stmt.body.stmts:
                visit(inner, depth + 1)
        elif isinstance(stmt, ast.If):
            for inner in stmt.then.stmts:
                visit(inner, depth)
            if stmt.els is not None:
                for inner in stmt.els.stmts:
                    visit(inner, depth)
        elif isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                visit(inner, depth)

    for stmt in kernel.body.stmts:
        visit(stmt, 0)
    return loops


def max_loop_depth(kernel: ast.KernelDef) -> int:
    """Deepest loop nesting in the kernel (0 = no loops)."""
    loops = find_loops(kernel)
    return max((l.depth + 1 for l in loops), default=0)


def linear_index_term(expr: ast.Expr) -> IndexTerm:
    """Decompose a subscript into ``(base_var, offset)``.

    Recognized forms: ``c``, ``v``, ``v + c``, ``v - c``, ``c + v``.
    Anything else returns ``(IRREGULAR, 0)``.
    """
    if isinstance(expr, ast.IntLit):
        return (None, expr.value)
    if isinstance(expr, ast.Ident):
        return (expr.name, 0)
    if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
        lhs, rhs = expr.lhs, expr.rhs
        if isinstance(lhs, ast.Ident) and isinstance(rhs, ast.IntLit):
            sign = 1 if expr.op == "+" else -1
            return (lhs.name, sign * rhs.value)
        if expr.op == "+" and isinstance(lhs, ast.IntLit) and isinstance(rhs, ast.Ident):
            return (rhs.name, lhs.value)
    return (IRREGULAR, 0)


@dataclass
class ArrayAccessInfo:
    """Read/write footprint of one array inside one kernel."""

    name: str
    #: Each access is a tuple of per-dimension IndexTerms.
    reads: Set[Tuple[IndexTerm, ...]] = field(default_factory=set)
    writes: Set[Tuple[IndexTerm, ...]] = field(default_factory=set)
    irregular: bool = False

    @property
    def is_read(self) -> bool:
        return bool(self.reads)

    @property
    def is_written(self) -> bool:
        return bool(self.writes)

    def read_offsets(self, axis_vars: Sequence[str]) -> Set[Tuple[int, ...]]:
        """Constant offsets of reads along the given index variables.

        Accesses whose base variable along a dimension is not in
        ``axis_vars`` contribute offset 0 along that dimension.
        """
        offsets: Set[Tuple[int, ...]] = set()
        for access in self.reads:
            offsets.add(
                tuple(
                    term[1] if term[0] in axis_vars or term[0] is None else 0
                    for term in access
                )
            )
        return offsets

    def halo_radius(self, axis_vars: Sequence[str]) -> int:
        """Maximum absolute read offset along thread-mapped dimensions."""
        radius = 0
        for access in self.reads:
            for term in access:
                if term[0] in axis_vars:
                    radius = max(radius, abs(term[1]))
        return radius


@dataclass
class StatementAccess:
    """Read/write sets of one executable statement (assignments and
    initialized declarations)."""

    index: int
    stmt: ast.Stmt
    arrays_read: FrozenSet[str]
    arrays_written: FrozenSet[str]
    scalars_read: FrozenSet[str]
    scalars_written: FrozenSet[str]
    flops: int
    #: Loop variables of enclosing loops (innermost last).
    loop_context: Tuple[str, ...]
    #: Guard depth (number of enclosing ifs).
    guard_depth: int


@dataclass
class KernelAccesses:
    """Complete access summary for a kernel."""

    kernel_name: str
    index_vars: Dict[str, str]
    arrays: Dict[str, ArrayAccessInfo]
    statements: List[StatementAccess]
    loops: List[LoopInfo]
    uses_shared: bool
    has_irregular: bool

    @property
    def arrays_read(self) -> Set[str]:
        return {a.name for a in self.arrays.values() if a.is_read}

    @property
    def arrays_written(self) -> Set[str]:
        return {a.name for a in self.arrays.values() if a.is_written}

    @property
    def total_flops_per_point(self) -> int:
        return sum(s.flops for s in self.statements)

    def per_array_flops(self) -> Dict[str, int]:
        """FLOPs of the statements touching each array (ops metadata field)."""
        result: Dict[str, int] = {name: 0 for name in self.arrays}
        for stmt in self.statements:
            touched = stmt.arrays_read | stmt.arrays_written
            for name in touched:
                if name in result:
                    result[name] += stmt.flops
        return result


def _count_flops(expr: ast.Expr) -> int:
    """Count floating-point operations in an expression tree.

    Arithmetic binary operators count 1; math intrinsics count a nominal
    cost (transcendentals are several hardware ops).
    """
    cost = 0
    intrinsic_cost = {
        "sqrt": 4,
        "exp": 8,
        "log": 8,
        "sin": 8,
        "cos": 8,
        "tan": 10,
        "pow": 10,
        "fabs": 1,
        "abs": 1,
        "min": 1,
        "max": 1,
        "fmin": 1,
        "fmax": 1,
        "floor": 1,
        "ceil": 1,
    }
    for node in expr.walk():
        if isinstance(node, ast.Binary) and node.op in ("+", "-", "*", "/"):
            cost += 1
        elif isinstance(node, ast.Unary) and node.op == "-":
            cost += 1
        elif isinstance(node, ast.Call):
            cost += intrinsic_cost.get(node.func, 2)
        elif isinstance(node, ast.Ternary):
            cost += 1
    return cost


def _expr_names(expr: ast.Expr) -> Tuple[Set[str], Set[str]]:
    """Return (array names indexed, scalar names referenced) in an expression."""
    arrays: Set[str] = set()
    scalars: Set[str] = set()

    def visit(node: ast.Expr) -> None:
        if isinstance(node, ast.Index):
            if node.array_name is not None:
                arrays.add(node.array_name)
            for sub in node.indices:
                visit(sub)
        elif isinstance(node, ast.Ident):
            scalars.add(node.name)
        elif isinstance(node, ast.Member):
            pass  # thread geometry, not data
        elif isinstance(node, (ast.Binary,)):
            visit(node.lhs)
            visit(node.rhs)
        elif isinstance(node, ast.Unary):
            visit(node.operand)
        elif isinstance(node, ast.Call):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, ast.Ternary):
            visit(node.cond)
            visit(node.then)
            visit(node.els)

    visit(expr)
    return arrays, scalars


def collect_accesses(kernel: ast.KernelDef) -> KernelAccesses:
    """Build the full access summary for ``kernel``."""
    index_vars = find_global_index_vars(kernel)
    pointer_params = {p.name for p in kernel.pointer_params()}
    shared_names: Set[str] = set()
    arrays: Dict[str, ArrayAccessInfo] = {}
    statements: List[StatementAccess] = []
    loops = find_loops(kernel)
    uses_shared = False
    has_irregular = False
    counter = 0

    def info(name: str) -> ArrayAccessInfo:
        if name not in arrays:
            arrays[name] = ArrayAccessInfo(name)
        return arrays[name]

    def record_access(node: ast.Index, is_write: bool) -> None:
        nonlocal has_irregular
        name = node.array_name
        if name is None or (name not in pointer_params and name not in shared_names):
            return
        if name in shared_names:
            return  # shared tiles are staging, not global footprint
        terms = tuple(linear_index_term(i) for i in node.indices)
        entry = info(name)
        if any(t[0] == IRREGULAR for t in terms):
            entry.irregular = True
            has_irregular = True
        if is_write:
            entry.writes.add(terms)
        else:
            entry.reads.add(terms)

    def scan_expr(expr: ast.Expr, is_store: bool = False) -> None:
        if isinstance(expr, ast.Index):
            record_access(expr, is_store)
            for sub in expr.indices:
                scan_expr(sub)
        elif isinstance(expr, ast.Binary):
            scan_expr(expr.lhs)
            scan_expr(expr.rhs)
        elif isinstance(expr, ast.Unary):
            scan_expr(expr.operand)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                scan_expr(arg)
        elif isinstance(expr, ast.Ternary):
            scan_expr(expr.cond)
            scan_expr(expr.then)
            scan_expr(expr.els)

    def visit(stmt: ast.Stmt, loop_ctx: Tuple[str, ...], guard_depth: int) -> None:
        nonlocal counter, uses_shared
        if isinstance(stmt, ast.VarDecl):
            if stmt.is_shared:
                uses_shared = True
                shared_names.add(stmt.name)
            if stmt.init is not None:
                scan_expr(stmt.init)
                # an initialized scalar declaration is a defining statement:
                # its dataflow (array -> scalar -> array) must be visible to
                # the fission separability analysis
                init_arrays, init_scalars = _expr_names(stmt.init)
                global_arrays = pointer_params | shared_names
                statements.append(
                    StatementAccess(
                        index=counter,
                        stmt=stmt,
                        arrays_read=frozenset(init_arrays & global_arrays),
                        arrays_written=frozenset(),
                        scalars_read=frozenset(init_scalars - global_arrays),
                        scalars_written=frozenset({stmt.name}),
                        # integer index math (pure-scalar inits) is
                        # address arithmetic, not floating-point work
                        flops=_count_flops(stmt.init) if init_arrays else 0,
                        loop_context=loop_ctx,
                        guard_depth=guard_depth,
                    )
                )
                counter += 1
        elif isinstance(stmt, ast.Assign):
            scan_expr(stmt.target, is_store=True)
            if stmt.op != "=":
                # compound assignment also reads the target
                scan_expr(stmt.target, is_store=False)
            scan_expr(stmt.value)
            arrays_r, scalars_r = _expr_names(stmt.value)
            arrays_w: Set[str] = set()
            scalars_w: Set[str] = set()
            if isinstance(stmt.target, ast.Index):
                if stmt.target.array_name is not None:
                    arrays_w.add(stmt.target.array_name)
                # subscript expressions are reads
                for sub in stmt.target.indices:
                    a, s = _expr_names(sub)
                    arrays_r |= a
                    scalars_r |= s
            elif isinstance(stmt.target, ast.Ident):
                scalars_w.add(stmt.target.name)
            if stmt.op != "=":
                # compound assignment also reads the written location
                arrays_r |= arrays_w
                scalars_r |= scalars_w
            global_arrays = pointer_params | shared_names
            statements.append(
                StatementAccess(
                    index=counter,
                    stmt=stmt,
                    arrays_read=frozenset(arrays_r & global_arrays),
                    arrays_written=frozenset(arrays_w & global_arrays),
                    scalars_read=frozenset(scalars_r - global_arrays),
                    scalars_written=frozenset(scalars_w - global_arrays),
                    flops=_count_flops(stmt.value),
                    loop_context=loop_ctx,
                    guard_depth=guard_depth,
                )
            )
            counter += 1
        elif isinstance(stmt, ast.If):
            scan_expr(stmt.cond)
            for inner in stmt.then.stmts:
                visit(inner, loop_ctx, guard_depth + 1)
            if stmt.els is not None:
                for inner in stmt.els.stmts:
                    visit(inner, loop_ctx, guard_depth + 1)
        elif isinstance(stmt, ast.For):
            scan_expr(stmt.start)
            scan_expr(stmt.bound)
            for inner in stmt.body.stmts:
                visit(inner, loop_ctx + (stmt.var,), guard_depth)
        elif isinstance(stmt, ast.While):
            scan_expr(stmt.cond)
            for inner in stmt.body.stmts:
                visit(inner, loop_ctx, guard_depth)
        elif isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                visit(inner, loop_ctx, guard_depth)

    for stmt in kernel.body.stmts:
        visit(stmt, (), 0)

    return KernelAccesses(
        kernel_name=kernel.name,
        index_vars=index_vars,
        arrays=arrays,
        statements=statements,
        loops=loops,
        uses_shared=uses_shared,
        has_irregular=has_irregular,
    )


def shared_arrays_between(a: KernelAccesses, b: KernelAccesses) -> Set[str]:
    """Arrays touched by both kernels (the locality targets of fusion)."""
    return (a.arrays_read | a.arrays_written) & (b.arrays_read | b.arrays_written)

"""Stencil-feature detection (operations metadata, §3.2.1).

Classifies each kernel's data-access pattern: stencil shape (point / star /
box), neighborhood radius, dimensionality, access stride and loop sizes.
These features feed the operations-metadata file and the performance
projection model (halo sizes for shared-memory tiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from ..cudalite import ast_nodes as ast
from .accesses import IRREGULAR, KernelAccesses, collect_accesses


@dataclass(frozen=True)
class StencilShape:
    """Classified stencil footprint of one array in one kernel."""

    #: 'point' (offset 0 only), 'star' (offsets on axes), 'box' (diagonals),
    #: or 'irregular'.
    kind: str
    #: Neighborhood radius (max |offset| along any dimension).
    radius: int
    #: Number of distinct offsets (e.g. 5 for the classic 2-D star).
    points: int
    #: Number of array dimensions indexed by thread/loop variables.
    dims: int

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``star-5pt-r1``."""
        if self.kind == "point":
            return "point"
        if self.kind == "irregular":
            return "irregular"
        return f"{self.kind}-{self.points}pt-r{self.radius}"


def classify_offsets(offsets: Set[Tuple[int, ...]]) -> StencilShape:
    """Classify a set of constant offset vectors into a stencil shape."""
    if not offsets:
        return StencilShape("point", 0, 0, 0)
    dims = max(len(o) for o in offsets)
    normalized = {tuple(o) + (0,) * (dims - len(o)) for o in offsets}
    radius = max((max(abs(c) for c in o) if o else 0) for o in normalized)
    if radius == 0:
        return StencilShape("point", 0, len(normalized), dims)
    has_diagonal = any(sum(1 for c in o if c != 0) > 1 for o in normalized)
    kind = "box" if has_diagonal else "star"
    return StencilShape(kind, radius, len(normalized), dims)


@dataclass(frozen=True)
class ArrayStencil:
    """Stencil features of one array access pattern."""

    array: str
    shape: StencilShape
    #: Unit-stride flag: subscripts use the thread-mapped variables directly.
    unit_stride: bool


@dataclass(frozen=True)
class KernelStencilInfo:
    """Operations metadata for one kernel."""

    kernel_name: str
    #: Per-array stencil classification (read footprints).
    stencils: Tuple[ArrayStencil, ...]
    #: Max loop nest depth.
    loop_depth: int
    #: Static loop sizes where constant (loop var -> trip count), else None.
    loop_sizes: Dict[str, Optional[int]]
    #: Largest halo radius over all arrays (drives shared-memory tile size).
    max_radius: int
    #: True if any access was non-affine.
    irregular: bool

    @property
    def is_stencil(self) -> bool:
        """True if at least one array is read with a non-point footprint."""
        return any(s.shape.radius > 0 for s in self.stencils)


def _const_trip_count(loop) -> Optional[int]:
    start = loop.start
    bound = loop.bound
    step = loop.step
    if (
        isinstance(start, ast.IntLit)
        and isinstance(bound, ast.IntLit)
        and isinstance(step, ast.IntLit)
        and step.value > 0
    ):
        end = bound.value + 1 if loop.cmp == "<=" else bound.value
        return max(0, -(-(end - start.value) // step.value))
    return None


def analyze_stencil(
    kernel: ast.KernelDef, accesses: Optional[KernelAccesses] = None
) -> KernelStencilInfo:
    """Classify the stencil features of ``kernel``."""
    acc = accesses if accesses is not None else collect_accesses(kernel)
    axis_vars = set(acc.index_vars) | {l.var for l in acc.loops}
    stencils = []
    max_radius = 0
    for name in sorted(acc.arrays):
        info = acc.arrays[name]
        offsets = info.read_offsets(tuple(axis_vars))
        shape = (
            StencilShape("irregular", 0, 0, 0)
            if info.irregular
            else classify_offsets(offsets)
        )
        unit_stride = all(
            all(term[0] != IRREGULAR for term in access)
            for access in info.reads | info.writes
        )
        stencils.append(ArrayStencil(name, shape, unit_stride))
        max_radius = max(max_radius, shape.radius)
    loop_sizes = {l.var: _const_trip_count(l) for l in acc.loops}
    depth = max((l.depth + 1 for l in acc.loops), default=0)
    return KernelStencilInfo(
        kernel_name=kernel.name,
        stencils=tuple(stencils),
        loop_depth=depth,
        loop_sizes=loop_sizes,
        max_radius=max_radius,
        irregular=acc.has_irregular,
    )

"""Target identification: which kernels enter the fusion search (§3.2.2, §5.2).

The framework automatically excludes two kinds of kernels from the search
space (they stay in the DDG/OEG for precedence but are tagged ineligible):

* **compute-bound kernels** — identified by mapping operational intensity
  onto the Roofline model; fusing them cannot help and they bloat the
  search space;
* **boundary kernels** — memory-bound kernels operating on a small subset
  of the arrays (e.g. boundary-condition updates on a few 2-D planes),
  identified by a small active-iteration fraction.

Kernels with irregular (non-affine) accesses are also excluded, per the
paper's supported-stencil restrictions.

The paper's Fluam case study shows the automated filter's known blind spot:
latency-bound kernels whose metadata *looks* memory-bound pass the filter
and slow GGA convergence; only manual filtering removes them.  The
``manual_exclusions`` parameter models that intervention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..analysis.metadata import ProgramMetadata
from ..gpu.device import DeviceSpec
from .roofline import classify

#: Kernels whose active fraction is below this are treated as boundary
#: kernels (they touch a few planes of the domain only).
BOUNDARY_ACTIVE_FRACTION = 0.30


@dataclass
class FilterDecision:
    """Why a kernel was kept or excluded."""

    kernel: str
    eligible: bool
    reason: str
    operational_intensity: float = 0.0
    active_fraction: float = 1.0


@dataclass
class TargetReport:
    """Output of the target-identification stage."""

    decisions: Dict[str, FilterDecision] = field(default_factory=dict)

    @property
    def targets(self) -> List[str]:
        return sorted(k for k, d in self.decisions.items() if d.eligible)

    @property
    def excluded(self) -> List[str]:
        return sorted(k for k, d in self.decisions.items() if not d.eligible)

    def reason(self, kernel: str) -> str:
        return self.decisions[kernel].reason

    def summary(self) -> str:
        lines = [f"targets: {len(self.targets)} / {len(self.decisions)} kernels"]
        for kernel in sorted(self.decisions):
            d = self.decisions[kernel]
            mark = "+" if d.eligible else "-"
            lines.append(f"  {mark} {kernel}: {d.reason}")
        return "\n".join(lines)


def identify_targets(
    metadata: ProgramMetadata,
    device: Optional[DeviceSpec] = None,
    boundary_fraction: float = BOUNDARY_ACTIVE_FRACTION,
    manual_exclusions: Iterable[str] = (),
    disable_filtering: bool = False,
) -> TargetReport:
    """Decide the fusion targets from the gathered metadata.

    Parameters
    ----------
    metadata:
        Output of the metadata-gathering stage.
    device:
        Defaults to the device recorded in the metadata.
    boundary_fraction:
        Active-iteration-fraction threshold below which a memory-bound
        kernel is classified as a boundary kernel.
    manual_exclusions:
        Kernel names the programmer excludes by hand (the Fluam-style
        intervention).  Applied on top of the automatic rules.
    disable_filtering:
        Keep every kernel as a target (used to measure how much the filter
        helps GGA convergence — the paper reports 2.5x slower without it).
    """
    device = device or metadata.device
    manual = set(manual_exclusions)
    report = TargetReport()
    for name in metadata.kernels():
        perf = metadata.performance[name]
        ops = metadata.operations.get(name)
        if disable_filtering:
            report.decisions[name] = FilterDecision(
                name, True, "filtering disabled", 0.0,
                ops.active_fraction if ops else 1.0,
            )
            continue
        if name in manual:
            report.decisions[name] = FilterDecision(
                name, False, "excluded manually (programmer intervention)"
            )
            continue
        point = classify(name, perf.flops, perf.bytes_moved, device)
        active_fraction = ops.active_fraction if ops else 1.0
        if ops is not None and ops.irregular:
            report.decisions[name] = FilterDecision(
                name,
                False,
                "irregular access pattern (unsupported stencil)",
                point.operational_intensity,
                active_fraction,
            )
            continue
        if point.is_compute_bound:
            report.decisions[name] = FilterDecision(
                name,
                False,
                f"compute-bound (OI {point.operational_intensity:.1f} >= "
                f"ridge {point.ridge_point:.1f})",
                point.operational_intensity,
                active_fraction,
            )
            continue
        if active_fraction < boundary_fraction:
            report.decisions[name] = FilterDecision(
                name,
                False,
                f"boundary kernel (active fraction {active_fraction:.2f} < "
                f"{boundary_fraction:.2f})",
                point.operational_intensity,
                active_fraction,
            )
            continue
        report.decisions[name] = FilterDecision(
            name,
            True,
            f"memory-bound target (OI {point.operational_intensity:.2f})",
            point.operational_intensity,
            active_fraction,
        )
    return report


def tag_eligibility(ddg, oeg, report: TargetReport) -> None:
    """Mark DDG/OEG invocation nodes with the filter decision.

    Ineligible kernels stay in the graphs (they still impose precedence,
    §5.2) but are never placed into fusion groups.
    """
    for graph in (ddg, oeg):
        for node, data in graph.nodes(data=True):
            kernel = data.get("kernel")
            if kernel is None:
                continue
            decision = report.decisions.get(kernel)
            data["eligible"] = bool(decision and decision.eligible)

"""Building the :class:`FusionProblem` from program + metadata + targets.

This is the glue between the pipeline's earlier stages and the GGA: it
turns every recorded kernel invocation into a :class:`NodeInfo` (volumes,
radii, eligibility) and runs the **lazy-fission pre-step** — fissioning
every fissionable target once, gathering the fragments' metadata, and
registering the fragments as alternative nodes the search can switch to
(§4.1: "fission is applied in a pre-step in which the metadata of the
fissioned kernels is gathered").

It also keeps the per-node code-generation bindings (kernel AST, argument
lists, launch geometry) the final stage needs to materialize the search's
chosen grouping as CUDA code.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.accesses import KernelAccesses, collect_accesses
from ..analysis.filtering import TargetReport
from ..analysis.metadata import ProgramMetadata
from ..analysis.volume import estimate_volume
from ..cudalite import ast_nodes as ast
from ..errors import ReproError, SearchError
from ..gpu.device import DeviceSpec
from ..reliability import faults
from ..transform.fission import fission_kernel
from ..transform.kernel_model import extract_model
from .grouping import FusionProblem, NodeInfo

logger = logging.getLogger(__name__)


@dataclass
class CodegenBinding:
    """Everything needed to regenerate / launch one node's kernel."""

    kernel: ast.KernelDef
    #: host array name per pointer parameter, in parameter order
    array_args: Tuple[str, ...]
    #: scalar argument values, in scalar-parameter order
    scalar_values: Tuple[float, ...]
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]

    def scalar_arg_exprs(self) -> Tuple[ast.Expr, ...]:
        """Scalar args as literal expressions (metadata-driven codegen)."""
        exprs: List[ast.Expr] = []
        for param, value in zip(
            [p for p in self.kernel.params if not p.type.is_pointer],
            self.scalar_values,
        ):
            if param.type.base == "int":
                exprs.append(ast.IntLit(int(value)))
            else:
                exprs.append(ast.FloatLit(float(value)))
        return tuple(exprs)


@dataclass
class BuiltProblem:
    """The search problem plus codegen-side bookkeeping."""

    problem: FusionProblem
    bindings: Dict[str, CodegenBinding]
    #: content digest of the problem; namespaces shared fitness-cache
    #: entries so results survive GGA restarts over the same program
    fingerprint: str = ""
    #: node → error message for launches whose static analysis failed and
    #: that were described conservatively (fusion-ineligible) instead
    analysis_failures: Dict[str, str] = field(default_factory=dict)


def _node_info(
    node: str,
    order: float,
    kernel: ast.KernelDef,
    accesses: KernelAccesses,
    array_args: Sequence[str],
    scalar_values: Sequence[float],
    grid: Tuple[int, int, int],
    block: Tuple[int, int, int],
    eligible: bool,
    fissionable: bool,
    parent: Optional[str] = None,
    fragments: Tuple[str, ...] = (),
) -> NodeInfo:
    pointer_names = [p.name for p in kernel.pointer_params()]
    scalar_names = [p.name for p in kernel.scalar_params()]
    binding = dict(zip(pointer_names, array_args))
    scalar_env = dict(zip(scalar_names, scalar_values))
    volume = estimate_volume(kernel, grid, block, scalar_env, accesses)
    axis_vars = tuple(accesses.index_vars) + tuple(l.var for l in accesses.loops)
    radius = {
        binding.get(name, name): info.halo_radius(axis_vars)
        for name, info in accesses.arrays.items()
    }
    fusable = (
        eligible
        and not accesses.has_irregular
        and extract_model(kernel) is not None
    )
    return NodeInfo(
        node=node,
        kernel=kernel.name,
        order=order,
        eligible=eligible,
        fusable=fusable,
        fissionable=fissionable and eligible,
        arrays_read=frozenset(binding[a] for a in volume.arrays_read),
        arrays_written=frozenset(binding[a] for a in volume.arrays_written),
        points_per_array={
            binding.get(a, a): p for a, p in volume.points_per_array.items()
        },
        flops=volume.flops,
        flops_per_point=float(accesses.total_flops_per_point),
        radius=radius,
        extents=(grid[0] * block[0], grid[1] * block[1], grid[2] * block[2]),
        grid=grid,
        block=block,
        parent=parent,
        fragments=fragments,
    )


def _conservative_node_info(
    node: str,
    order: float,
    kernel: ast.KernelDef,
    array_args: Sequence[str],
    grid: Tuple[int, int, int],
    block: Tuple[int, int, int],
) -> NodeInfo:
    """Fusion-ineligible description of a launch whose analysis failed.

    Declaring every bound array both read and written yields the maximal
    precedence constraints in the node OEG, so the launch keeps its
    original position and semantics; ``eligible=False`` keeps the search
    from ever fusing or fissioning it.
    """
    threads = grid[0] * block[0] * grid[1] * block[1] * grid[2] * block[2]
    arrays = frozenset(array_args)
    return NodeInfo(
        node=node,
        kernel=kernel.name,
        order=order,
        eligible=False,
        fusable=False,
        fissionable=False,
        arrays_read=arrays,
        arrays_written=arrays,
        points_per_array={a: threads for a in arrays},
        flops=threads,
        flops_per_point=1.0,
        radius={a: 0 for a in arrays},
        extents=(grid[0] * block[0], grid[1] * block[1], grid[2] * block[2]),
        grid=grid,
        block=block,
    )


def build_problem(
    program: ast.Program,
    metadata: ProgramMetadata,
    report: TargetReport,
    device: DeviceSpec,
    extra_precedence: Sequence[Tuple[str, str]] = (),
    enable_fission: bool = True,
) -> BuiltProblem:
    """Assemble the search problem from the earlier pipeline stages.

    A launch whose static analysis fails (or is fault-injected to fail
    via the ``analysis`` seam) is not fatal: the node is described
    conservatively — all arrays read *and* written, fusion-ineligible —
    which preserves its launch-order semantics while excluding it from
    the search.  Such nodes are reported in
    :attr:`BuiltProblem.analysis_failures`.
    """
    nodes: List[NodeInfo] = []
    bindings: Dict[str, CodegenBinding] = {}
    access_cache: Dict[str, KernelAccesses] = {}
    analysis_failures: Dict[str, str] = {}

    for index, entry in enumerate(metadata.launch_order):
        kernel_name, array_args, grid, block = (
            entry[0],
            entry[1],
            tuple(entry[2]),
            tuple(entry[3]),
        )
        scalars = tuple(entry[4]) if len(entry) > 4 else ()
        kernel = program.kernel(kernel_name)
        node = f"{kernel_name}@{index}"
        try:
            faults.check("analysis", node)
            if kernel_name not in access_cache:
                access_cache[kernel_name] = collect_accesses(kernel)
            accesses = access_cache[kernel_name]
        except ReproError as exc:
            logger.warning(
                "analysis failed for %s; describing conservatively: %s", node, exc
            )
            analysis_failures[node] = str(exc)
            nodes.append(
                _conservative_node_info(
                    node, float(index), kernel, array_args, grid, block
                )
            )
            bindings[node] = CodegenBinding(
                kernel=kernel,
                array_args=tuple(array_args),
                scalar_values=scalars,
                grid=grid,
                block=block,
            )
            continue
        decision = report.decisions.get(kernel_name)
        eligible = bool(decision and decision.eligible)
        ops = metadata.operations.get(kernel_name)
        fissionable = bool(ops and ops.fissionable and enable_fission)

        fragment_ids: Tuple[str, ...] = ()
        fragment_infos: List[NodeInfo] = []
        if fissionable and eligible:
            fragments = fission_kernel(kernel)
            if len(fragments) > 1:
                ids = []
                for fi, frag in enumerate(fragments):
                    frag_node = f"{node}/f{fi}"
                    ids.append(frag_node)
                    frag_array_args = []
                    frag_scalars = []
                    pointer_idx = {
                        p.name: i
                        for i, p in enumerate(kernel.params)
                        if p.type.is_pointer
                    }
                    # slice args by the fragment's original parameter indices
                    orig_pointer_order = [
                        i for i, p in enumerate(kernel.params) if p.type.is_pointer
                    ]
                    orig_scalar_order = [
                        i for i, p in enumerate(kernel.params) if not p.type.is_pointer
                    ]
                    for pi in frag.param_indices:
                        param = kernel.params[pi]
                        if param.type.is_pointer:
                            frag_array_args.append(
                                array_args[orig_pointer_order.index(pi)]
                            )
                        else:
                            frag_scalars.append(
                                scalars[orig_scalar_order.index(pi)]
                            )
                    frag_acc = collect_accesses(frag.kernel)
                    fragment_infos.append(
                        _node_info(
                            frag_node,
                            order=index + (fi + 1) / (len(fragments) + 1),
                            kernel=frag.kernel,
                            accesses=frag_acc,
                            array_args=frag_array_args,
                            scalar_values=frag_scalars,
                            grid=grid,
                            block=block,
                            eligible=eligible,
                            fissionable=False,
                            parent=node,
                        )
                    )
                    bindings[frag_node] = CodegenBinding(
                        kernel=frag.kernel,
                        array_args=tuple(frag_array_args),
                        scalar_values=tuple(frag_scalars),
                        grid=grid,
                        block=block,
                    )
                fragment_ids = tuple(ids)
            else:
                fissionable = False

        try:
            info = _node_info(
                node,
                order=float(index),
                kernel=kernel,
                accesses=accesses,
                array_args=array_args,
                scalar_values=scalars,
                grid=grid,
                block=block,
                eligible=eligible,
                fissionable=fissionable,
                fragments=fragment_ids,
            )
        except ReproError as exc:
            logger.warning(
                "analysis failed for %s; describing conservatively: %s", node, exc
            )
            analysis_failures[node] = str(exc)
            info = _conservative_node_info(
                node, float(index), kernel, array_args, grid, block
            )
            fragment_infos = []
        nodes.append(info)
        nodes.extend(fragment_infos)
        bindings[node] = CodegenBinding(
            kernel=kernel,
            array_args=tuple(array_args),
            scalar_values=scalars,
            grid=grid,
            block=block,
        )

    problem = FusionProblem(
        nodes=nodes,
        shared_mem_capacity=device.shared_mem_per_block,
        extra_precedence=extra_precedence,
    )
    return BuiltProblem(
        problem=problem,
        bindings=bindings,
        fingerprint=problem.fingerprint(),
        analysis_failures=analysis_failures,
    )

"""Parallel per-generation fitness evaluation for the GGA.

The GGA evaluates a whole population per generation, and every evaluation
is independent — an embarrassingly parallel batch.  This module fans the
*uncached* members of a generation out over a ``concurrent.futures``
executor while the content-addressed :mod:`fitness_cache` absorbs the
repeats (elite copies, duplicate offspring, re-visited partitions).

Determinism
-----------
Results are returned in submission order and keyed by content, so the
outcome of a generation is independent of worker count and scheduling.
Built-in objectives are pure functions; custom stochastic objectives
should draw their randomness from
:func:`repro.search.fitness_cache.individual_seed`, which derives a
schedule-independent seed from the individual's content address and the
GA seed.  In ``process`` mode the worker additionally seeds the global
``random`` and ``numpy`` generators with that value before every
evaluation.

Fault tolerance
---------------
Worker evaluation is hardened: each individual's evaluation carries an
optional timeout, failed or timed-out evaluations are retried a bounded
number of times, and when the pool itself breaks (a killed process-pool
child, a pool that cannot start) the evaluator falls back to in-process
sequential evaluation.  Because the objective is a pure function of the
individual, the fallback produces bit-identical results — fault recovery
never changes the search trajectory.  Cache reads are validated, so a
poisoned or corrupted entry surfaces as a miss instead of a crash.

Environment configuration
-------------------------
``REPRO_SEARCH_WORKERS``
    Worker count; ``0`` or ``1`` evaluates sequentially (default).
``REPRO_SEARCH_EXECUTOR``
    ``thread`` (default) or ``process``.  Process mode requires the
    objective to be registered by name in every worker (built-ins are).
``REPRO_EVAL_TIMEOUT``
    Per-individual evaluation timeout in seconds (unset or ``<= 0``
    disables the timeout).
``REPRO_EVAL_RETRIES``
    How many times a failed/timed-out evaluation is re-submitted to the
    pool before falling back in-process (default ``1``).
"""

from __future__ import annotations

import logging
import os
import random
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Dict, List, Optional, Sequence, Tuple

from ..gpu.device import DeviceSpec
from ..observability.metrics import MetricsSnapshot, get_registry
from ..reliability import faults
from .fitness_cache import (
    FitnessCache,
    NullCache,
    content_key,
    individual_seed,
    validate_fitness_result,
)
from .grouping import FusionProblem, Grouping, Violations
from .objective import ObjectiveFn, evaluate_individual, get_objective
from .penalty import PenaltyParams

logger = logging.getLogger(__name__)

ENV_WORKERS = "REPRO_SEARCH_WORKERS"
ENV_EXECUTOR = "REPRO_SEARCH_EXECUTOR"
ENV_EVAL_TIMEOUT = "REPRO_EVAL_TIMEOUT"
ENV_EVAL_RETRIES = "REPRO_EVAL_RETRIES"

EvalResult = Tuple[float, Violations]


def workers_from_env(default: int = 0) -> int:
    raw = os.environ.get(ENV_WORKERS)
    if raw is None:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


def executor_kind_from_env(default: str = "thread") -> str:
    raw = os.environ.get(ENV_EXECUTOR, default).strip().lower()
    return raw if raw in ("thread", "process") else default


def eval_timeout_from_env(default: Optional[float] = None) -> Optional[float]:
    raw = os.environ.get(ENV_EVAL_TIMEOUT)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else None


def eval_retries_from_env(default: int = 1) -> int:
    raw = os.environ.get(ENV_EVAL_RETRIES)
    if raw is None:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


# ------------------------------------------------------- process-mode plumbing

_worker_state: Dict[str, object] = {}


def _init_process_worker(
    problem: FusionProblem,
    device: DeviceSpec,
    objective_name: str,
    penalties: PenaltyParams,
    base_seed: int,
) -> None:
    _worker_state["problem"] = problem
    _worker_state["device"] = device
    _worker_state["objective"] = get_objective(objective_name)
    _worker_state["penalties"] = penalties
    _worker_state["base_seed"] = base_seed


def _process_evaluate(individual: Grouping) -> EvalResult:
    # worker seams fire here only — never in the in-process fallback, so
    # a crash/hang plan cannot follow the evaluation out of the pool
    faults.worker_fault(allow_exit=True)
    base_seed = int(_worker_state["base_seed"])  # type: ignore[arg-type]
    seed = individual_seed(individual, base_seed)
    random.seed(seed)
    try:
        import numpy as _np

        _np.random.seed(seed % (2**32))
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    return evaluate_individual(
        _worker_state["problem"],  # type: ignore[arg-type]
        individual,
        _worker_state["device"],  # type: ignore[arg-type]
        _worker_state["objective"],  # type: ignore[arg-type]
        _worker_state["penalties"],  # type: ignore[arg-type]
    )


def _process_evaluate_metered(
    individual: Grouping,
) -> Tuple[EvalResult, MetricsSnapshot]:
    """Process-pool entry that ships the worker's metrics home.

    Any metrics the evaluation records in the *worker's* registry (e.g.
    ``metadata_warnings_total`` from profiling) would otherwise die with
    the pool; snapshot-and-clear after each evaluation lets the parent
    merge them into its own registry without double counting.
    """
    result = _process_evaluate(individual)
    registry = get_registry()
    snapshot = registry.snapshot()
    registry.clear()
    return result, snapshot


# ------------------------------------------------------------------ evaluator


class PopulationEvaluator:
    """Memoized, parallel, fault-tolerant evaluation of GGA populations.

    Parameters
    ----------
    cache:
        A :class:`FitnessCache` (possibly shared across GGA instances) or
        ``None`` to disable memoization.
    namespace:
        Disambiguates content keys when one cache serves several search
        problems; use the problem's fingerprint.
    workers:
        ``0`` / ``1`` evaluates in the calling thread.  ``None`` defers to
        ``REPRO_SEARCH_WORKERS``.
    executor:
        ``"thread"`` or ``"process"``; ``None`` defers to
        ``REPRO_SEARCH_EXECUTOR``.
    timeout:
        Per-individual evaluation timeout in seconds; ``None`` defers to
        ``REPRO_EVAL_TIMEOUT`` (no timeout when unset).
    retries:
        Pool re-submissions per individual before the in-process
        fallback; ``None`` defers to ``REPRO_EVAL_RETRIES`` (default 1).
    """

    def __init__(
        self,
        problem: FusionProblem,
        device: DeviceSpec,
        objective: ObjectiveFn,
        penalties: PenaltyParams,
        *,
        objective_name: Optional[str] = None,
        cache: Optional[FitnessCache] = None,
        namespace: str = "",
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        base_seed: int = 0,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> None:
        self.problem = problem
        self.device = device
        self.objective = objective
        self.penalties = penalties
        self.objective_name = objective_name
        self.cache = cache if cache is not None else NullCache()
        self.namespace = namespace
        self.workers = workers_from_env(0) if workers is None else max(0, workers)
        self.executor_kind = (
            executor_kind_from_env() if executor is None else executor
        )
        self.base_seed = base_seed
        self.timeout = eval_timeout_from_env() if timeout is None else (
            timeout if timeout > 0 else None
        )
        self.retries = eval_retries_from_env() if retries is None else max(0, retries)
        self.evaluations = 0  # objective calls actually executed
        self.lookups = 0  # individual fitness requests seen
        #: requests answered without executing the objective — cache hits
        #: plus within-batch duplicates served by the dedup pass
        self.cache_hits = 0
        #: worker evaluations that timed out or errored and were retried
        self.worker_failures = 0
        #: the subset of ``worker_failures`` that were timeouts
        self.timeouts = 0
        #: individuals ultimately computed by the in-process fallback
        self.fallback_evaluations = 0
        self._executor: Optional[Executor] = None
        self._pool_broken = False

    # ------------------------------------------------------------- lifecycle

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.executor_kind == "process" and self.objective_name:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_process_worker,
                    initargs=(
                        self.problem,
                        self.device,
                        self.objective_name,
                        self.penalties,
                        self.base_seed,
                    ),
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="gga-eval",
                )
        return self._executor

    def _mark_pool_broken(self, reason: str) -> None:
        if not self._pool_broken:
            logger.warning(
                "evaluation pool unusable (%s); falling back to in-process "
                "sequential evaluation",
                reason,
            )
        self._pool_broken = True
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=False)
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            self._executor = None

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "PopulationEvaluator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------ evaluation

    def _compute(self, individual: Grouping) -> EvalResult:
        self.evaluations += 1
        return evaluate_individual(
            self.problem, individual, self.device, self.objective, self.penalties
        )

    def _compute_in_worker(self, individual: Grouping) -> EvalResult:
        """Thread-pool worker entry: the only thread path with fault seams."""
        faults.worker_fault(allow_exit=False)
        return self._compute(individual)

    def _cache_get(self, key: str) -> Optional[EvalResult]:
        if faults.poison_cache_value():
            # fault seam: corrupt the entry *before* the validated read,
            # proving read validation turns poison into a miss
            self.cache.put(key, ("poisoned-fitness-entry", None))
        return self.cache.get(key, validator=validate_fitness_result)

    def evaluate(self, individual: Grouping) -> EvalResult:
        """Evaluate one individual through the cache (sequentially)."""
        self.lookups += 1
        key = content_key(individual, self.namespace)
        cached = self._cache_get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        result = self._compute(individual)
        self.cache.put(key, result)
        return result

    def _evaluate_parallel(
        self, pending: List[Tuple[str, Grouping]]
    ) -> List[EvalResult]:
        """Fan ``pending`` out over the pool; survive timeouts, worker
        failures and a broken pool.  Results are in ``pending`` order and
        bit-identical to sequential evaluation (the objective is pure)."""
        results: List[Optional[EvalResult]] = [None] * len(pending)
        todo = list(range(len(pending)))
        attempts = 0
        while todo and not self._pool_broken and attempts <= self.retries:
            attempts += 1
            try:
                executor = self._ensure_executor()
            except Exception as exc:
                self._mark_pool_broken(f"failed to start: {exc}")
                break
            is_process = isinstance(executor, ProcessPoolExecutor)
            fn = _process_evaluate_metered if is_process else self._compute_in_worker
            try:
                futures = [
                    (i, executor.submit(fn, pending[i][1])) for i in todo
                ]
            except Exception as exc:
                self._mark_pool_broken(f"submit failed: {exc}")
                break
            retry: List[int] = []
            for i, future in futures:
                try:
                    result = future.result(timeout=self.timeout)
                    if is_process:
                        self.evaluations += 1
                        result, snapshot = result
                        get_registry().merge(snapshot)
                    results[i] = result
                except BrokenExecutor as exc:
                    self._mark_pool_broken(f"worker died: {exc}")
                    retry.append(i)
                except FuturesTimeoutError:
                    self.worker_failures += 1
                    self.timeouts += 1
                    get_registry().inc("search_eval_timeouts_total")
                    logger.warning(
                        "evaluation of individual %d timed out after %ss "
                        "(attempt %d/%d)",
                        i,
                        self.timeout,
                        attempts,
                        self.retries + 1,
                    )
                    retry.append(i)
                except Exception as exc:
                    self.worker_failures += 1
                    get_registry().inc("search_worker_failures_total")
                    logger.warning(
                        "worker evaluation of individual %d failed "
                        "(attempt %d/%d): %s",
                        i,
                        attempts,
                        self.retries + 1,
                        exc,
                    )
                    retry.append(i)
            todo = retry
        for i in todo:
            # deterministic last resort: compute in-process, no seams
            self.fallback_evaluations += 1
            get_registry().inc("search_fallback_evaluations_total")
            results[i] = self._compute(pending[i][1])
        return results  # type: ignore[return-value]

    def evaluate_many(self, individuals: Sequence[Grouping]) -> List[EvalResult]:
        """Evaluate a population; results in input order.

        Duplicate partitions within the batch are computed once; cached
        partitions are not recomputed at all; the remaining unique
        individuals fan out over the executor when ``workers > 1``.
        """
        keys = [content_key(ind, self.namespace) for ind in individuals]
        self.lookups += len(keys)
        results: Dict[str, EvalResult] = {}
        pending: List[Tuple[str, Grouping]] = []
        pending_keys: set = set()
        for key, individual in zip(keys, individuals):
            if key in results or key in pending_keys:
                continue
            cached = self._cache_get(key)
            if cached is not None:
                results[key] = cached
            else:
                pending.append((key, individual))
                pending_keys.add(key)

        if pending:
            if self.workers > 1 and len(pending) > 1 and not self._pool_broken:
                computed = self._evaluate_parallel(pending)
            else:
                computed = [self._compute(ind) for _, ind in pending]
            for (key, _), result in zip(pending, computed):
                self.cache.put(key, result)
                results[key] = result

        hits = len(keys) - len(pending)
        self.cache_hits += hits
        registry = get_registry()
        registry.inc("search_fitness_lookups_total", len(keys))
        registry.inc("search_fitness_cache_hits_total", hits)
        registry.inc("search_evaluations_total", len(pending))
        return [results[key] for key in keys]


def evaluate_population_sequential(
    problem: FusionProblem,
    individuals: Sequence[Grouping],
    device: DeviceSpec,
    objective: ObjectiveFn,
    penalties: PenaltyParams,
) -> List[EvalResult]:
    """Uncached, sequential reference evaluation (benchmark baseline)."""
    return [
        evaluate_individual(problem, individual, device, objective, penalties)
        for individual in individuals
    ]

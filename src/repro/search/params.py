"""GA parameter file (§3.2.4).

The optimization algorithm is configured by a parameter file: population,
genetic operators, generations and constraints.  A default file is provided
(values chosen empirically, as in the paper); the programmer can amend it
and point the pipeline at the edited copy, or select a custom objective
function registered via :func:`repro.search.objective.register_objective`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Union

from ..errors import SearchError
from .penalty import PenaltyParams


@dataclass
class GAParams:
    """Parameters of the grouped genetic algorithm."""

    population: int = 100
    generations: int = 500
    tournament_size: int = 3
    crossover_rate: float = 0.8
    #: probability of each mutation operator per offspring
    mutate_merge: float = 0.30
    mutate_split: float = 0.15
    mutate_move: float = 0.20
    mutate_fission: float = 0.10
    #: elite individuals copied unchanged each generation
    elitism: int = 2
    seed: int = 12345
    objective: str = "projected_gflops"
    #: stop early when the best fitness has not improved for this many
    #: generations (0 disables early stopping)
    stall_generations: int = 0
    #: memoize fitness by partition content across generations and restarts
    #: (the environment override REPRO_FITNESS_CACHE=0 wins over this)
    fitness_cache: bool = True
    #: parallel fitness workers per generation; 0 defers to the
    #: REPRO_SEARCH_WORKERS environment variable, 1 forces sequential
    workers: int = 0
    #: 'thread' or 'process' (see repro.search.parallel)
    executor: str = "thread"
    #: concurrent island subpopulations (1 = the classic single-population
    #: GGA; >1 enables repro.search.islands with periodic elite migration)
    islands: int = 1
    #: generations between elite exchanges when ``islands > 1``
    migration_interval: int = 5
    #: elites each island emits per migration epoch
    migration_size: int = 2
    #: fraction of bred offspring admitted to exact fitness evaluation
    #: after the analytic-model-only surrogate ranking pass (1.0 disables
    #: the pre-filter and is bit-identical to the classic GGA)
    surrogate_topk: float = 1.0
    penalties: PenaltyParams = field(default_factory=PenaltyParams)

    def write(self, path: Union[str, Path]) -> None:
        lines = ["# GA parameter file (amend and pass back to the framework)"]
        for f in fields(self):
            if f.name == "penalties":
                continue
            lines.append(f"{f.name} = {getattr(self, f.name)!r}")
        for f in fields(self.penalties):
            lines.append(f"penalty.{f.name} = {getattr(self.penalties, f.name)!r}")
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def read(cls, path: Union[str, Path]) -> "GAParams":
        params = cls()
        penalty_kwargs = {}
        for raw in Path(path).read_text().splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if "=" not in line:
                raise SearchError(f"malformed parameter line: {raw!r}")
            key, _, value = line.partition("=")
            key = key.strip()
            value = value.strip()
            if key.startswith("penalty."):
                penalty_kwargs[key[len("penalty."):]] = float(value)
                continue
            if not hasattr(params, key):
                raise SearchError(f"unknown GA parameter {key!r}")
            current = getattr(params, key)
            if isinstance(current, bool):
                setattr(params, key, value in ("True", "true", "1"))
            elif isinstance(current, int):
                setattr(params, key, int(value))
            elif isinstance(current, float):
                setattr(params, key, float(value))
            else:
                setattr(params, key, value.strip("'\""))
        if penalty_kwargs:
            params.penalties = PenaltyParams(**penalty_kwargs)
        return params


def default_params() -> GAParams:
    """The default parameter set (paper: 500 generations, population 100)."""
    return GAParams()


def fast_params(seed: int = 12345) -> GAParams:
    """Reduced parameters for interactive runs / CI (documented deviation:
    the paper's C++/OpenMP GGA runs 500x100 in ~11 min; the pure-Python
    reproduction defaults to a smaller budget with early stopping)."""
    return GAParams(
        population=36,
        generations=60,
        stall_generations=15,
        seed=seed,
    )

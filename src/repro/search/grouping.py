"""Problem representation for the fusion search (§3.2.4, §5.4).

The search operates over *invocation nodes* — the eligible kernel
invocations plus, thanks to the lazy-fission pre-step (§4.1), the fission
fragments of every fissionable invocation.  An *individual* is a
:class:`Grouping`: a partition of the chosen node set where every group is
a prospective fused kernel.

Constraints handed to the GGA:

* **problem-related** (from DDG/OEG): groups must be convex under the
  precedence relation — no dependence path may leave a group and re-enter;
* **architecture-related** (from metadata): the shared-memory tiles a
  fused group needs must fit the device's per-block capacity.

The shared-memory estimate uses the same tile arithmetic as the code
generator, evaluated at a nominal block shape (the final shape is chosen by
the block-size tuner after the search, §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from ..errors import SearchError

#: Nominal block shape used for shared-memory estimates during the search.
NOMINAL_BLOCK = (32, 8)


@dataclass(frozen=True)
class NodeInfo:
    """Everything the search needs to know about one invocation node."""

    node: str
    kernel: str
    #: launch order key (fragments get fractional offsets after the parent)
    order: float
    eligible: bool
    fusable: bool
    fissionable: bool
    arrays_read: FrozenSet[str]
    arrays_written: FrozenSet[str]
    #: unique points touched per array (traffic volume)
    points_per_array: Mapping[str, int]
    flops: float
    flops_per_point: float
    #: per-array stencil radius (host names)
    radius: Mapping[str, int]
    extents: Tuple[int, int, int]
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    #: parent node id when this is a fission fragment
    parent: Optional[str] = None
    #: fragment node ids when this node is fissionable (whole form)
    fragments: Tuple[str, ...] = ()

    @property
    def touched(self) -> FrozenSet[str]:
        return self.arrays_read | self.arrays_written


class FusionProblem:
    """The search problem: nodes, precedence, capacity."""

    def __init__(
        self,
        nodes: Sequence[NodeInfo],
        shared_mem_capacity: int,
        extra_precedence: Iterable[Tuple[str, str]] = (),
    ) -> None:
        self.infos: Dict[str, NodeInfo] = {n.node: n for n in nodes}
        if len(self.infos) != len(nodes):
            raise SearchError("duplicate node ids in problem")
        self.capacity = shared_mem_capacity
        # programmer-supplied OEG edges: edges consistent with launch order
        # add precedence; edges *contradicting* it cannot be realized by the
        # generator (it keeps launch order inside a fused kernel), so the
        # pair is marked mutually unfusable instead
        self.extra_precedence: List[Tuple[str, str]] = []
        self.user_conflicts: List[FrozenSet[str]] = []
        for u, v in extra_precedence:
            iu, iv = self.infos.get(u), self.infos.get(v)
            if iu is None or iv is None:
                continue
            if iu.order < iv.order:
                self.extra_precedence.append((u, v))
            else:
                self.user_conflicts.append(frozenset({u, v}))
        #: parent node -> fragment ids
        self.fragments_of: Dict[str, Tuple[str, ...]] = {
            n.node: n.fragments for n in nodes if n.fragments
        }
        self._whole_nodes = [n.node for n in nodes if n.parent is None]
        self._oeg_cache: Dict[FrozenSet[str], Tuple[nx.DiGraph, Dict[str, Set[str]]]] = {}
        self._fingerprint: Optional[str] = None

    def fingerprint(self) -> str:
        """Content digest of the whole problem (nodes, capacity, edges).

        Used to namespace entries in a fitness cache shared across search
        problems: two problems with identical node metadata hash alike and
        may share fitness results; any difference separates them.
        """
        if self._fingerprint is None:
            import hashlib

            parts: List[str] = [f"capacity={self.capacity}"]
            for node in sorted(self.infos):
                info = self.infos[node]
                parts.append(
                    repr((
                        info.node, info.kernel, info.order, info.eligible,
                        info.fusable, info.fissionable,
                        tuple(sorted(info.arrays_read)),
                        tuple(sorted(info.arrays_written)),
                        tuple(sorted(info.points_per_array.items())),
                        info.flops, info.flops_per_point,
                        tuple(sorted(info.radius.items())),
                        info.extents, info.grid, info.block,
                        info.parent, info.fragments,
                    ))
                )
            parts.append(repr(sorted(self.extra_precedence)))
            parts.append(repr(sorted(map(sorted, self.user_conflicts))))
            digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------ node universe

    def whole_nodes(self) -> List[str]:
        """Original invocation nodes (launch order)."""
        return sorted(self._whole_nodes, key=lambda n: self.infos[n].order)

    def info(self, node: str) -> NodeInfo:
        return self.infos[node]

    def eligible_nodes(self) -> List[str]:
        return [n for n in self.whole_nodes() if self.infos[n].eligible]

    # ------------------------------------------------------- precedence (OEG)

    def node_oeg(self, active: Iterable[str]) -> Tuple[nx.DiGraph, Dict[str, Set[str]]]:
        """Build the OEG over an *active node set* and its reachability.

        Derives RAW/WAR/WAW precedence from the nodes' read/write sets in
        launch order, exactly as the graph stage derives the program OEG.
        The result is cached per active set.
        """
        key = frozenset(active)
        cached = self._oeg_cache.get(key)
        if cached is not None:
            return cached
        ordered = sorted(key, key=lambda n: self.infos[n].order)
        oeg = nx.DiGraph()
        oeg.add_nodes_from(ordered)
        last_writers: Dict[str, str] = {}
        readers_since: Dict[str, List[str]] = {}
        for node in ordered:
            info = self.infos[node]
            for array in sorted(info.arrays_read):
                writer = last_writers.get(array)
                if writer is not None and writer != node:
                    oeg.add_edge(writer, node, dep="RAW", array=array)
                readers_since.setdefault(array, []).append(node)
            for array in sorted(info.arrays_written):
                for reader in readers_since.get(array, []):
                    if reader != node and not info_reads_own(self.infos, node, reader):
                        oeg.add_edge(reader, node, dep="WAR", array=array)
                writer = last_writers.get(array)
                if writer is not None and writer != node:
                    oeg.add_edge(writer, node, dep="WAW", array=array)
                last_writers[array] = node
                readers_since[array] = (
                    [node] if array in info.arrays_read else []
                )
        for u, v in self.extra_precedence:
            if u in key and v in key:
                oeg.add_edge(u, v, dep="USER", array="")
        reach: Dict[str, Set[str]] = {}
        for node in reversed(list(nx.topological_sort(oeg))):
            acc: Set[str] = set()
            for succ in oeg.successors(node):
                acc.add(succ)
                acc |= reach[succ]
            reach[node] = acc
        self._oeg_cache[key] = (oeg, reach)
        if len(self._oeg_cache) > 64:
            self._oeg_cache.pop(next(iter(self._oeg_cache)))
            self._oeg_cache[key] = (oeg, reach)
        return oeg, reach

    # ---------------------------------------------------------- smem estimate

    def locality_arrays(self, members: Iterable[str]) -> Set[str]:
        """Arrays giving reuse inside a prospective group: read by >= 2
        members, or produced by one member and read by another."""
        members = list(members)
        read_count: Dict[str, int] = {}
        written: Set[str] = set()
        read: Set[str] = set()
        for node in members:
            info = self.infos[node]
            for array in info.arrays_read:
                read_count[array] = read_count.get(array, 0) + 1
                read.add(array)
            written |= info.arrays_written
        multi = {a for a, n in read_count.items() if n >= 2}
        return multi | (written & read)

    def group_smem_bytes(
        self, members: Iterable[str], block: Tuple[int, int] = NOMINAL_BLOCK
    ) -> int:
        """Tile bytes a fused group needs at the nominal block shape."""
        members = list(members)
        total = 0
        for array in sorted(self.locality_arrays(members)):
            radius = max(
                (self.infos[m].radius.get(array, 0) for m in members), default=0
            )
            total += (block[0] + 2 * radius) * (block[1] + 2 * radius) * 8
        return total

    # ------------------------------------------------------------- feasibility

    def group_convex(
        self,
        members: FrozenSet[str],
        reach: Mapping[str, Set[str]],
    ) -> bool:
        if len(members) <= 1:
            return True
        for a in members:
            for mid in reach.get(a, ()):  # nodes reachable from a
                if mid in members:
                    continue
                if reach.get(mid, frozenset()) & members:
                    return False
        return True

    def group_fusable(self, members: FrozenSet[str]) -> bool:
        """Every member of a multi-node group must be transformable."""
        if len(members) <= 1:
            return True
        return all(self.infos[m].fusable for m in members)

    def group_realizable(
        self, members: FrozenSet[str], max_waves: int = 2
    ) -> bool:
        """Mirror of the code generator's feasibility rules (§5.5.3).

        A group is unrealizable when fusing it would need behaviour the
        generator cannot produce safely:

        * a member reads an array *with a halo* that a later member
          overwrites (inter-block WAR hazard),
        * an array consumed with a halo has two producers in the group, or
        * the halo producer→consumer chains are deeper than the supported
          wave count (one barrier level of temporal blocking).
        """
        if len(members) <= 1:
            return True
        for conflict in self.user_conflicts:
            if conflict <= members:
                return False
        ordered = sorted(members, key=lambda n: self.infos[n].order)
        first_writer: Dict[str, int] = {}
        for idx, node in enumerate(ordered):
            for array in self.infos[node].arrays_written:
                first_writer.setdefault(array, idx)
        for idx, node in enumerate(ordered):
            info = self.infos[node]
            for array in info.arrays_read:
                radius = info.radius.get(array, 0)
                writer = first_writer.get(array)
                if radius > 0 and writer is not None and writer > idx:
                    return False
        # halo RAW edges: single producer, bounded wave depth, and a
        # "pure inputs" producer (its extended compute reads every input at
        # halo distance, so no other member may write what it reads)
        all_writes: Dict[str, Set[int]] = {}
        for idx, node in enumerate(ordered):
            for array in self.infos[node].arrays_written:
                all_writes.setdefault(array, set()).add(idx)
        last_writer: Dict[str, int] = {}
        producer_of: Dict[str, int] = {}
        depth = [0] * len(ordered)
        for idx, node in enumerate(ordered):
            info = self.infos[node]
            for array in sorted(info.arrays_read):
                writer = last_writer.get(array)
                if writer is None or writer == idx:
                    continue
                if info.radius.get(array, 0) > 0:
                    known = producer_of.setdefault(array, writer)
                    if known != writer:
                        return False
                    # the tile stages the array's pre-kernel values once per
                    # iteration; a second in-group writer (even an earlier,
                    # fully-overwritten one) leaves guard-boundary cells of
                    # the tile stale relative to the sequential program
                    if all_writes.get(array, set()) - {writer}:
                        return False
                    depth[idx] = max(depth[idx], depth[writer] + 1)
                    if depth[idx] + 1 > max_waves:
                        return False
                    producer_info = self.infos[ordered[writer]]
                    for read in producer_info.arrays_read:
                        writers = all_writes.get(read, set())
                        if writers - {writer}:
                            return False
            for array in info.arrays_written:
                last_writer[array] = idx
        # the wave assignment must not reorder ANY dependence pair: a halo
        # consumer pushed to a later wave cannot jump over a member it has a
        # RAW/WAR/WAW relation with (the generator emits wave by wave)
        last_writer.clear()
        readers: Dict[str, List[int]] = {}
        for idx, node in enumerate(ordered):
            info = self.infos[node]
            for array in info.arrays_read:
                writer = last_writer.get(array)
                if writer is not None and depth[writer] > depth[idx]:
                    return False
                readers.setdefault(array, []).append(idx)
            for array in info.arrays_written:
                for reader in readers.get(array, []):
                    if reader != idx and depth[reader] > depth[idx]:
                        return False
                writer = last_writer.get(array)
                if writer is not None and depth[writer] > depth[idx]:
                    return False
                last_writer[array] = idx
        return True


@dataclass(frozen=True)
class Grouping:
    """An individual: which fissionable nodes are split, and the partition."""

    #: nodes represented in split (fragment) form
    split: FrozenSet[str]
    #: partition of the active node set
    groups: Tuple[FrozenSet[str], ...]

    def active_nodes(self, problem: FusionProblem) -> List[str]:
        nodes: List[str] = []
        for node in problem.whole_nodes():
            if node in self.split:
                nodes.extend(problem.fragments_of[node])
            else:
                nodes.append(node)
        return nodes

    def covers(self, problem: FusionProblem) -> bool:
        active = set(self.active_nodes(problem))
        seen: Set[str] = set()
        for group in self.groups:
            if group & seen:
                return False
            seen |= group
        return seen == active

    def group_of(self, node: str) -> Optional[FrozenSet[str]]:
        for group in self.groups:
            if node in group:
                return group
        return None

    def fused_groups(self) -> List[FrozenSet[str]]:
        return [g for g in self.groups if len(g) > 1]


@dataclass
class Violations:
    """Constraint violations of one individual."""

    non_convex: int = 0
    smem_over: int = 0
    unfusable: int = 0
    #: groups the code generator could not realize (WAR hazards, deep
    #: producer/consumer chains, multi-producer halo arrays)
    unrealizable: int = 0
    #: groups over the smem budget that contain a fissionable member
    relaxable: int = 0

    @property
    def total(self) -> int:
        return self.non_convex + self.smem_over + self.unfusable + self.unrealizable

    @property
    def feasible(self) -> bool:
        return self.total == 0


def cyclic_group_indices(
    problem: FusionProblem, individual: Grouping
) -> Set[int]:
    """Indices of groups participating in a cyclic group condensation.

    Per-group convexity is necessary but not sufficient: two individually
    convex groups can still deadlock each other (G1 → G2 and G2 → G1 edges
    with no path threading through).  Scheduling requires the condensation
    of the OEG over the grouping to be acyclic.
    """
    active = individual.active_nodes(problem)
    oeg, _ = problem.node_oeg(active)
    owner: Dict[str, int] = {}
    for gid, group in enumerate(individual.groups):
        for node in group:
            owner[node] = gid
    condensed = nx.DiGraph()
    condensed.add_nodes_from(range(len(individual.groups)))
    for u, v in oeg.edges:
        gu, gv = owner.get(u), owner.get(v)
        if gu is None or gv is None or gu == gv:
            continue
        condensed.add_edge(gu, gv)
    cyclic: Set[int] = set()
    for scc in nx.strongly_connected_components(condensed):
        if len(scc) > 1:
            cyclic |= scc
    return cyclic


def evaluate_violations(
    problem: FusionProblem, individual: Grouping
) -> Violations:
    """Count constraint violations (consumed by the penalty function)."""
    violations = Violations()
    active = individual.active_nodes(problem)
    _, reach = problem.node_oeg(active)
    ordering_bad = cyclic_group_indices(problem, individual)
    for index, group in enumerate(individual.groups):
        if len(group) <= 1:
            continue
        if not problem.group_fusable(group):
            violations.unfusable += 1
        if not problem.group_convex(group, reach) or index in ordering_bad:
            violations.non_convex += 1
        if not problem.group_realizable(group):
            violations.unrealizable += 1
        if problem.group_smem_bytes(group) > problem.capacity:
            violations.smem_over += 1
            if any(
                problem.infos[m].fissionable or problem.infos[m].parent is not None
                for m in group
            ):
                violations.relaxable += 1
    return violations


def singleton_grouping(problem: FusionProblem) -> Grouping:
    """The identity individual: every invocation is its own group."""
    return Grouping(
        split=frozenset(),
        groups=tuple(frozenset({n}) for n in problem.whole_nodes()),
    )


def info_reads_own(
    infos: Mapping[str, NodeInfo], writer: str, reader: str
) -> bool:
    """WAR self-edge guard (reader == writer handled by caller)."""
    return writer == reader

"""Objective functions for the fusion search (§3.2.4).

The default objective is the *projected performance bound* of the whole
transformed program in GFLOPS, computed with the same analytic model the
profiler uses: each group is projected as one fused kernel (locality
arrays staged, launches merged), each singleton as an untransformed kernel.

Objectives are black boxes — they receive the problem, an individual and a
device, and return a float in GFLOPS — and are pluggable through
:func:`register_objective`, mirroring the paper's "write your own objective
function and point the parameter file at it" workflow.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Tuple

from ..analysis.volume import LaunchVolume
from ..errors import SearchError
from ..gpu.device import DeviceSpec
from ..gpu.perfmodel import CodegenTraits, estimate_registers, project_kernel
from .grouping import (
    NOMINAL_BLOCK,
    FusionProblem,
    Grouping,
    Violations,
    evaluate_violations,
)
from .penalty import PenaltyParams, penalized_fitness

ObjectiveFn = Callable[[FusionProblem, Grouping, DeviceSpec], float]

_REGISTRY: Dict[str, ObjectiveFn] = {}


def register_objective(name: str, fn: ObjectiveFn) -> None:
    """Register a custom objective function under ``name``."""
    _REGISTRY[name] = fn


def get_objective(name: str) -> ObjectiveFn:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SearchError(
            f"unknown objective {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def group_volume(problem: FusionProblem, members: Iterable[str]) -> LaunchVolume:
    """Merged launch volume of a prospective fused group."""
    members = list(members)
    arrays_read: set = set()
    arrays_written: set = set()
    points: Dict[str, int] = {}
    flops = 0.0
    active = 0
    for node in members:
        info = problem.info(node)
        arrays_read |= info.arrays_read
        arrays_written |= info.arrays_written
        for array, p in info.points_per_array.items():
            points[array] = max(points.get(array, 0), p)
        flops += info.flops
        active = max(active, info.extents[0] * info.extents[1] * info.extents[2])
    return LaunchVolume(
        kernel_name="+".join(problem.info(m).kernel for m in members),
        active_threads=active,
        launched_threads=active,
        points_per_array=points,
        arrays_read=arrays_read,
        arrays_written=arrays_written,
        flops=flops,
    )


def group_projection_time(
    problem: FusionProblem,
    members: Iterable[str],
    device: DeviceSpec,
    block: Tuple[int, int, int] = (NOMINAL_BLOCK[0], NOMINAL_BLOCK[1], 1),
) -> float:
    """Projected execution time (s) of one group fused at the nominal block.

    Cached per (group, device, block) on the problem instance — group
    fitness evaluation dominates GGA runtime (the paper reports > 90%), so
    memoizing repeated groups across generations is the main speed lever.
    """
    members = list(members)
    blocks = [problem.info(m).block for m in members]
    if blocks:
        block = max(set(blocks), key=blocks.count)
    # dict get/setdefault are atomic under the GIL, so concurrent evaluator
    # threads share this cache safely; a lost race costs one recomputation
    cache: Dict = problem.__dict__.setdefault("_group_time_cache", {})
    key = (frozenset(members), device.name, block)
    cached = cache.get(key)
    if cached is not None:
        return cached
    volume = group_volume(problem, members)
    radius: Dict[str, int] = {}
    flops_pp = 0.0
    ordered = sorted(members, key=lambda n: problem.info(n).order)
    for node in ordered:
        info = problem.info(node)
        flops_pp += info.flops_per_point
        for array, r in info.radius.items():
            radius[array] = max(radius.get(array, 0), r)
    # intermediates produced by one member and consumed at the producing
    # thread's own site (radius 0) by strictly later members never leave
    # the chip in the fused kernel — the code generator routes them through
    # cache/registers (the B-CALM pole-array effect)
    on_chip: set = set()
    if len(ordered) > 1:
        first_writer: Dict[str, int] = {}
        first_reader: Dict[str, int] = {}
        for idx, node in enumerate(ordered):
            info = problem.info(node)
            for array in info.arrays_written:
                first_writer.setdefault(array, idx)
            for array in info.arrays_read:
                first_reader.setdefault(array, idx)
        for array, widx in first_writer.items():
            ridx = first_reader.get(array)
            if ridx is not None and ridx > widx and radius.get(array, 0) == 0:
                on_chip.add(array)
    if len(members) > 1:
        staged = problem.locality_arrays(members) - on_chip
        smem = problem.group_smem_bytes(members, (block[0], block[1]))
    else:
        staged = set()
        smem = 0
    traits = CodegenTraits(
        staged=staged,
        on_chip=on_chip,
        radius=radius,
        smem_per_block=min(smem, device.shared_mem_per_block),
        regs_per_thread=estimate_registers(
            len(volume.arrays_read | volume.arrays_written), flops_pp
        ),
    )
    time_s = project_kernel(device, volume, block, traits).time_s
    cache[key] = time_s
    return time_s


def projected_gflops(
    problem: FusionProblem, individual: Grouping, device: DeviceSpec
) -> float:
    """Default objective: whole-program projected GFLOPS."""
    total_time = 0.0
    total_flops = 0.0
    for group in individual.groups:
        total_time += group_projection_time(problem, group, device)
        total_flops += sum(problem.info(m).flops for m in group)
    if total_time <= 0:
        return 0.0
    return total_flops / total_time / 1e9


def projected_time_s(
    problem: FusionProblem, individual: Grouping, device: DeviceSpec
) -> float:
    """Projected program time (useful for reporting speedups)."""
    return sum(
        group_projection_time(problem, group, device) for group in individual.groups
    )


def clear_projection_caches(problem: FusionProblem) -> None:
    """Drop the per-problem projection memo (tests / benchmarks)."""
    problem.__dict__.pop("_group_time_cache", None)


def evaluate_individual(
    problem: FusionProblem,
    individual: Grouping,
    device: DeviceSpec,
    objective: ObjectiveFn,
    penalties: PenaltyParams,
) -> Tuple[float, Violations]:
    """One full fitness evaluation: objective, violations, penalty.

    This is the unit of work the search-throughput layer memoizes and
    parallelizes — it is a pure function of its arguments, which is what
    makes content-addressed caching and out-of-order workers safe.
    """
    raw = objective(problem, individual, device)
    violations = evaluate_violations(problem, individual)
    return penalized_fitness(raw, violations, penalties), violations


register_objective("projected_gflops", projected_gflops)

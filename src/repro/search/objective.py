"""Objective functions for the fusion search (§3.2.4).

The default objective is the *projected performance bound* of the whole
transformed program in GFLOPS, computed with the same analytic model the
profiler uses: each group is projected as one fused kernel (locality
arrays staged, launches merged), each singleton as an untransformed kernel.

Objectives are black boxes — they receive the problem, an individual and a
device, and return a float in GFLOPS — and are pluggable through
:func:`register_objective`, mirroring the paper's "write your own objective
function and point the parameter file at it" workflow.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..analysis.volume import LaunchVolume
from ..errors import SearchError
from ..gpu.device import DeviceSpec
from ..gpu.perfmodel import CodegenTraits, estimate_registers, project_kernel
from .grouping import (
    NOMINAL_BLOCK,
    FusionProblem,
    Grouping,
    Violations,
    evaluate_violations,
)
from .penalty import PenaltyParams, penalized_fitness

#: opt-out switch for the compiled fitness evaluator (on by default)
ENV_FITNESS_COMPILE = "REPRO_FITNESS_COMPILE"


def fitness_compile_enabled() -> bool:
    """Resolve the compiled-fitness switch from the environment."""
    raw = os.environ.get(ENV_FITNESS_COMPILE, "1").strip().lower()
    return raw not in ("0", "false", "off", "no")

ObjectiveFn = Callable[[FusionProblem, Grouping, DeviceSpec], float]

_REGISTRY: Dict[str, ObjectiveFn] = {}


def register_objective(name: str, fn: ObjectiveFn) -> None:
    """Register a custom objective function under ``name``."""
    _REGISTRY[name] = fn


def get_objective(name: str) -> ObjectiveFn:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SearchError(
            f"unknown objective {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def group_volume(problem: FusionProblem, members: Iterable[str]) -> LaunchVolume:
    """Merged launch volume of a prospective fused group."""
    members = list(members)
    arrays_read: set = set()
    arrays_written: set = set()
    points: Dict[str, int] = {}
    flops = 0.0
    active = 0
    for node in members:
        info = problem.info(node)
        arrays_read |= info.arrays_read
        arrays_written |= info.arrays_written
        for array, p in info.points_per_array.items():
            points[array] = max(points.get(array, 0), p)
        flops += info.flops
        active = max(active, info.extents[0] * info.extents[1] * info.extents[2])
    return LaunchVolume(
        kernel_name="+".join(problem.info(m).kernel for m in members),
        active_threads=active,
        launched_threads=active,
        points_per_array=points,
        arrays_read=arrays_read,
        arrays_written=arrays_written,
        flops=flops,
    )


def group_projection_time(
    problem: FusionProblem,
    members: Iterable[str],
    device: DeviceSpec,
    block: Tuple[int, int, int] = (NOMINAL_BLOCK[0], NOMINAL_BLOCK[1], 1),
) -> float:
    """Projected execution time (s) of one group fused at the nominal block.

    Cached per (group, device, block) on the problem instance — group
    fitness evaluation dominates GGA runtime (the paper reports > 90%), so
    memoizing repeated groups across generations is the main speed lever.
    """
    members = list(members)
    blocks = [problem.info(m).block for m in members]
    if blocks:
        block = max(set(blocks), key=blocks.count)
    # dict get/setdefault are atomic under the GIL, so concurrent evaluator
    # threads share this cache safely; a lost race costs one recomputation
    cache: Dict = problem.__dict__.setdefault("_group_time_cache", {})
    key = (frozenset(members), device.name, block)
    cached = cache.get(key)
    if cached is not None:
        return cached
    volume = group_volume(problem, members)
    radius: Dict[str, int] = {}
    flops_pp = 0.0
    ordered = sorted(members, key=lambda n: problem.info(n).order)
    for node in ordered:
        info = problem.info(node)
        flops_pp += info.flops_per_point
        for array, r in info.radius.items():
            radius[array] = max(radius.get(array, 0), r)
    # intermediates produced by one member and consumed at the producing
    # thread's own site (radius 0) by strictly later members never leave
    # the chip in the fused kernel — the code generator routes them through
    # cache/registers (the B-CALM pole-array effect)
    on_chip: set = set()
    if len(ordered) > 1:
        first_writer: Dict[str, int] = {}
        first_reader: Dict[str, int] = {}
        for idx, node in enumerate(ordered):
            info = problem.info(node)
            for array in info.arrays_written:
                first_writer.setdefault(array, idx)
            for array in info.arrays_read:
                first_reader.setdefault(array, idx)
        for array, widx in first_writer.items():
            ridx = first_reader.get(array)
            if ridx is not None and ridx > widx and radius.get(array, 0) == 0:
                on_chip.add(array)
    if len(members) > 1:
        staged = problem.locality_arrays(members) - on_chip
        smem = problem.group_smem_bytes(members, (block[0], block[1]))
    else:
        staged = set()
        smem = 0
    traits = CodegenTraits(
        staged=staged,
        on_chip=on_chip,
        radius=radius,
        smem_per_block=min(smem, device.shared_mem_per_block),
        regs_per_thread=estimate_registers(
            len(volume.arrays_read | volume.arrays_written), flops_pp
        ),
    )
    time_s = project_kernel(device, volume, block, traits).time_s
    cache[key] = time_s
    return time_s


def projected_gflops(
    problem: FusionProblem, individual: Grouping, device: DeviceSpec
) -> float:
    """Default objective: whole-program projected GFLOPS."""
    total_time = 0.0
    total_flops = 0.0
    for group in individual.groups:
        total_time += group_projection_time(problem, group, device)
        total_flops += sum(problem.info(m).flops for m in group)
    if total_time <= 0:
        return 0.0
    return total_flops / total_time / 1e9


def projected_time_s(
    problem: FusionProblem, individual: Grouping, device: DeviceSpec
) -> float:
    """Projected program time (useful for reporting speedups)."""
    return sum(
        group_projection_time(problem, group, device) for group in individual.groups
    )


def clear_projection_caches(problem: FusionProblem) -> None:
    """Drop the per-problem projection memo (tests / benchmarks)."""
    problem.__dict__.pop("_group_time_cache", None)


def _cyclic_components(n_groups: int, adj: Dict[int, List[int]]) -> Set[int]:
    """Group indices inside a non-trivial SCC of the condensed OEG.

    Iterative Tarjan over the (small) group-index graph — replaces the
    per-evaluation ``networkx.DiGraph`` construction of
    :func:`~repro.search.grouping.cyclic_group_indices`, with identical
    results (the condensation has no self-loops, so only components of
    size > 1 are cyclic).
    """
    counter = 0
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    cyclic: Set[int] = set()
    for root in range(n_groups):
        if root in index:
            continue
        work: List[List[int]] = [[root, 0]]
        while work:
            frame = work[-1]
            node, pos = frame
            if pos == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            descended = False
            succs = adj.get(node, ())
            while frame[1] < len(succs):
                succ = succs[frame[1]]
                frame[1] += 1
                if succ not in index:
                    work.append([succ, 0])
                    descended = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    cyclic.update(component)
    return cyclic


class CompiledFitness:
    """Memoizing fitness evaluator, bit-identical to the reference path.

    The GGA evaluates the same *parts* — splits, groups — in endless new
    combinations; the reference path rebuilds per-part state (OEG edge
    lists, networkx condensations, feasibility checks, projection sums)
    for every individual.  This evaluator precomputes nothing but
    memoizes everything at part granularity:

    * per split: the active node list's OEG edges and reachability
      (delegating to the problem's own ``node_oeg`` cache for the build);
    * per group: fusability / realizability / smem pressure / lazy-fission
      relaxability, and the (projection time, flops) pair of the default
      objective;
    * per (group, split): convexity under that split's reachability;
    * the cycle check runs a direct Tarjan pass over group indices instead
      of constructing a ``networkx`` digraph per evaluation;
    * per individual value: the final (fitness, violations) pair, so an
      exact re-evaluation (replays, restarts, converged populations) is a
      single dict probe.  A fresh ``Violations`` record is returned per
      call, matching the reference path's ownership semantics.

    Results are bit-identical to ``evaluate_individual_reference`` for
    any objective; the fast summation path engages only for the stock
    ``projected_gflops`` (a custom objective is still called per
    evaluation, with only the violation side memoized).  Like the fitness
    cache, this treats fitness as a pure function of the individual's
    *value*: numerically, float sums follow the group iteration order of
    the first value-equal individual seen.

    Thread-safety matches the reference path's caches: plain dict updates
    are atomic under the GIL, and a lost race costs one recomputation.
    """

    def __init__(
        self,
        problem: FusionProblem,
        device: DeviceSpec,
        objective: ObjectiveFn,
        penalties: PenaltyParams,
    ) -> None:
        self.problem = problem
        self.device = device
        self.objective = objective
        self.penalties = penalties
        self._whole = problem.whole_nodes()
        self._fragments = problem.fragments_of
        self._split_cache: Dict[FrozenSet[str], Tuple[Tuple, Mapping]] = {}
        self._group_static: Dict[FrozenSet[str], Tuple[bool, bool, bool, bool]] = {}
        self._group_convex: Dict[Tuple[FrozenSet[str], FrozenSet[str]], bool] = {}
        self._group_obj: Dict[FrozenSet[str], Tuple[float, float]] = {}
        self._eval_cache: Dict[Grouping, Tuple[float, Violations]] = {}

    def _split_state(self, split: FrozenSet[str]) -> Tuple[Tuple, Mapping]:
        state = self._split_cache.get(split)
        if state is None:
            active: List[str] = []
            for node in self._whole:
                if node in split:
                    active.extend(self._fragments[node])
                else:
                    active.append(node)
            oeg, reach = self.problem.node_oeg(active)
            state = (tuple(oeg.edges), reach)
            if len(self._split_cache) > 512:
                self._split_cache.clear()
            self._split_cache[split] = state
        return state

    def _group_flags(self, group: FrozenSet[str]) -> Tuple[bool, bool, bool, bool]:
        flags = self._group_static.get(group)
        if flags is None:
            problem = self.problem
            infos = problem.infos
            flags = (
                not problem.group_fusable(group),
                not problem.group_realizable(group),
                problem.group_smem_bytes(group) > problem.capacity,
                any(
                    infos[m].fissionable or infos[m].parent is not None
                    for m in group
                ),
            )
            self._group_static[group] = flags
        return flags

    def _violations(self, individual: Grouping) -> Violations:
        edges, reach = self._split_state(individual.split)
        groups = individual.groups
        owner: Dict[str, int] = {}
        for gid, group in enumerate(groups):
            for node in group:
                owner[node] = gid
        adj: Dict[int, List[int]] = {}
        for u, v in edges:
            gu = owner.get(u)
            gv = owner.get(v)
            if gu is None or gv is None or gu == gv:
                continue
            adj.setdefault(gu, []).append(gv)
        ordering_bad: Set[int] = (
            _cyclic_components(len(groups), adj) if adj else set()
        )
        violations = Violations()
        convex_cache = self._group_convex
        for index, group in enumerate(groups):
            if len(group) <= 1:
                continue
            unfusable, unrealizable, smem_over, relax_possible = self._group_flags(
                group
            )
            if unfusable:
                violations.unfusable += 1
            key = (group, individual.split)
            convex = convex_cache.get(key)
            if convex is None:
                convex = self.problem.group_convex(group, reach)
                convex_cache[key] = convex
            if not convex or index in ordering_bad:
                violations.non_convex += 1
            if unrealizable:
                violations.unrealizable += 1
            if smem_over:
                violations.smem_over += 1
                if relax_possible:
                    violations.relaxable += 1
        return violations

    def _objective_value(self, individual: Grouping) -> float:
        if self.objective is not projected_gflops:
            return self.objective(self.problem, individual, self.device)
        total_time = 0.0
        total_flops = 0.0
        memo = self._group_obj
        for group in individual.groups:
            pair = memo.get(group)
            if pair is None:
                pair = (
                    group_projection_time(self.problem, group, self.device),
                    sum(self.problem.info(m).flops for m in group),
                )
                memo[group] = pair
            total_time += pair[0]
            total_flops += pair[1]
        if total_time <= 0:
            return 0.0
        return total_flops / total_time / 1e9

    def evaluate(self, individual: Grouping) -> Tuple[float, Violations]:
        hit = self._eval_cache.get(individual)
        if hit is not None:
            # fresh Violations per call, like the reference path (callers
            # may hold on to / mutate the returned record)
            return hit[0], replace(hit[1])
        raw = self._objective_value(individual)
        violations = self._violations(individual)
        fitness = penalized_fitness(raw, violations, self.penalties)
        if len(self._eval_cache) > 65536:
            self._eval_cache.clear()
        self._eval_cache[individual] = (fitness, replace(violations))
        return fitness, violations


def compiled_fitness(
    problem: FusionProblem,
    device: DeviceSpec,
    objective: ObjectiveFn,
    penalties: PenaltyParams,
) -> CompiledFitness:
    """The per-problem :class:`CompiledFitness`, created on first use.

    Cached on the problem instance (like the projection-time memo), keyed
    by the remaining fitness inputs.  Keeping the objective referenced in
    the value pins its ``id`` for the key's lifetime.
    """
    cache: Dict = problem.__dict__.setdefault("_compiled_fitness", {})
    key = (id(objective), repr(device), repr(penalties))
    evaluator = cache.get(key)
    if evaluator is None:
        evaluator = CompiledFitness(problem, device, objective, penalties)
        cache[key] = evaluator
    return evaluator


def clear_compiled_fitness(problem: FusionProblem) -> None:
    """Drop the per-problem compiled evaluators (tests / benchmarks)."""
    problem.__dict__.pop("_compiled_fitness", None)


# --------------------------------------------------------------- surrogate


def surrogate_score(
    problem: FusionProblem,
    individual: Grouping,
    device: DeviceSpec,
    objective: ObjectiveFn,
    penalties: PenaltyParams,
) -> float:
    """Analytic-model-only candidate score for surrogate pre-filtering.

    The raw objective value — the projection-model sum, served from the
    per-group memo — penalized by the *statically memoized* per-group
    flags (fusability, realizability, shared-memory pressure).  What the
    exact evaluator computes on top, and this deliberately skips, is all
    split-dependent work: OEG edge walks, per-group convexity and the
    Tarjan cycle check.  The score is therefore a cheap, *optimistic*
    stand-in for the exact fitness — it can still overrank non-convex or
    cyclic candidates, which is why the GGA admits a top slice for exact
    evaluation rather than trusting the ranking outright.
    """
    evaluator = compiled_fitness(problem, device, objective, penalties)
    if fitness_compile_enabled():
        raw = evaluator._objective_value(individual)
    else:
        raw = objective(problem, individual, device)
    violations = Violations()
    for group in individual.groups:
        if len(group) <= 1:
            continue
        unfusable, unrealizable, smem_over, relax_possible = (
            evaluator._group_flags(group)
        )
        if unfusable:
            violations.unfusable += 1
        if unrealizable:
            violations.unrealizable += 1
        if smem_over:
            violations.smem_over += 1
            if relax_possible:
                violations.relaxable += 1
    return penalized_fitness(raw, violations, penalties)


class SurrogateVariant:
    """A model-scored single-edit neighbour of a bred offspring.

    The edit is held as a descriptor — the parent grouping, the indices
    of the groups the edit removes and the groups it adds — so the
    surrogate score can be computed incrementally from the per-group
    memos without ever constructing the child.  Only variants admitted
    by the ranking pay :func:`~repro.search.operators.make_grouping`.
    """

    __slots__ = ("score", "parent", "_drop", "_add")

    def __init__(
        self,
        score: float,
        parent: Grouping,
        drop: Tuple[int, ...],
        add: Tuple[FrozenSet[str], ...],
    ) -> None:
        self.score = score
        self.parent = parent
        self._drop = drop
        self._add = add

    def materialize(self) -> Grouping:
        from .operators import make_grouping

        dropped = set(self._drop)
        groups = [
            g for i, g in enumerate(self.parent.groups) if i not in dropped
        ]
        groups.extend(g for g in self._add if g)
        return make_grouping(set(self.parent.split), groups)


class SurrogateScorer:
    """Batch surrogate scoring plus cheap model-guided neighbourhoods.

    Wraps the per-problem :class:`CompiledFitness` so the per-group
    projection-time and static-flag memos are shared with exact
    evaluation: scoring a candidate pre-pays the memo fills its exact
    evaluation would do anyway.  On top of plain scoring it generates
    *variants* — single merge/split/move edits of a bred offspring whose
    scores are computed as deltas against the parent's per-group terms,
    two dictionary lookups per edit instead of a full rescan.

    Incremental mode needs the additive default objective
    (:func:`projected_gflops`) and the compiled evaluator; for custom
    objectives or ``REPRO_FITNESS_COMPILE=0`` the scorer still scores
    (via :func:`surrogate_score`) but generates no variants, and the GGA
    falls back to oversampled breeding.
    """

    def __init__(
        self,
        problem: FusionProblem,
        device: DeviceSpec,
        objective: ObjectiveFn,
        penalties: PenaltyParams,
    ) -> None:
        self.problem = problem
        self.device = device
        self.objective = objective
        self.penalties = penalties
        self.evaluator = compiled_fitness(problem, device, objective, penalties)
        self._components: Dict[Grouping, Tuple[float, float, Violations]] = {}

    @property
    def supports_variants(self) -> bool:
        return self.objective is projected_gflops and fitness_compile_enabled()

    def score(self, individual: Grouping) -> float:
        return surrogate_score(
            self.problem, individual, self.device, self.objective,
            self.penalties,
        )

    _NO_FLAGS = (False, False, False, False)

    def _group_terms(
        self, group: FrozenSet[str]
    ) -> Tuple[float, float, Tuple[bool, bool, bool, bool]]:
        """(projected time, flops, static flags) for one group, memoized."""
        evaluator = self.evaluator
        pair = evaluator._group_obj.get(group)
        if pair is None:
            pair = (
                group_projection_time(self.problem, group, self.device),
                sum(self.problem.info(m).flops for m in group),
            )
            evaluator._group_obj[group] = pair
        if len(group) <= 1:
            return pair[0], pair[1], self._NO_FLAGS
        return pair[0], pair[1], evaluator._group_flags(group)

    def components(
        self, individual: Grouping
    ) -> Tuple[float, float, Violations]:
        """Total (time, flops, static violations) — the delta baseline.

        Memoized per grouping: offspring that duplicate a parent (no-op
        mutation, crossover echoes) and individuals re-scored across
        generations skip the full per-group rescan.
        """
        hit = self._components.get(individual)
        if hit is not None:
            return hit[0], hit[1], replace(hit[2])
        total_time = 0.0
        total_flops = 0.0
        violations = Violations()
        for group in individual.groups:
            g_time, g_flops, flags = self._group_terms(group)
            total_time += g_time
            total_flops += g_flops
            self._apply_flags(violations, flags, +1)
        if len(self._components) > 16384:
            self._components.clear()
        self._components[individual] = (
            total_time, total_flops, replace(violations),
        )
        return total_time, total_flops, violations

    @staticmethod
    def _apply_flags(violations: Violations, flags, sign: int) -> None:
        unfusable, unrealizable, smem_over, relax_possible = flags
        if unfusable:
            violations.unfusable += sign
        if unrealizable:
            violations.unrealizable += sign
        if smem_over:
            violations.smem_over += sign
            if relax_possible:
                violations.relaxable += sign

    def score_from(
        self, components: Tuple[float, float, Violations]
    ) -> float:
        total_time, total_flops, violations = components
        raw = (
            total_flops / total_time / 1e9 if total_time > 0 else 0.0
        )
        return penalized_fitness(raw, violations, self.penalties)

    def variants(
        self,
        individual: Grouping,
        components: Tuple[float, float, Violations],
        rng,
        count: int,
    ) -> List[SurrogateVariant]:
        """Up to ``count`` single-edit neighbours, scored incrementally.

        Edits mirror the mutation operators' moves (merge two fusable
        groups, split a fused group, move one member out of a fused
        group) but are chosen blind and ranked by the model — the
        surrogate does the selection the operators' heuristics would
        otherwise approximate.
        """
        problem = self.problem
        groups = individual.groups
        infos = problem.infos
        fusable = [
            i
            for i, group in enumerate(groups)
            if all(infos[m].eligible and infos[m].fusable for m in group)
        ]
        fused = [i for i, g in enumerate(groups) if len(g) > 1]
        base_time, base_flops, base_viol = components
        out: List[SurrogateVariant] = []
        for _ in range(count):
            ops = []
            if len(fusable) >= 2:
                ops.append("merge")
            if fused:
                ops.append("split")
                ops.append("move")
            if not ops:
                break
            op = ops[rng.randrange(len(ops))]
            if op == "merge":
                i, j = rng.sample(fusable, 2)
                drop = (i, j)
                add = (groups[i] | groups[j],)
            elif op == "split":
                target = fused[rng.randrange(len(fused))]
                members = sorted(groups[target])
                rng.shuffle(members)
                cut = rng.randint(1, len(members) - 1)
                drop = (target,)
                add = (frozenset(members[:cut]), frozenset(members[cut:]))
            else:  # move
                source = fused[rng.randrange(len(fused))]
                node = sorted(groups[source])[
                    rng.randrange(len(groups[source]))
                ]
                rest = groups[source] - {node}
                if (
                    infos[node].fusable
                    and rng.random() < 0.6
                ):
                    destinations = [i for i in fusable if i != source]
                    if destinations:
                        dest = destinations[
                            rng.randrange(len(destinations))
                        ]
                        drop = (source, dest)
                        add = (rest, groups[dest] | {node})
                    else:
                        drop = (source,)
                        add = (rest, frozenset({node}))
                else:
                    drop = (source,)
                    add = (rest, frozenset({node}))
            d_time, d_flops = 0.0, 0.0
            violations = replace(base_viol)
            for index in drop:
                g_time, g_flops, flags = self._group_terms(groups[index])
                d_time -= g_time
                d_flops -= g_flops
                self._apply_flags(violations, flags, -1)
            for group in add:
                if not group:
                    continue
                g_time, g_flops, flags = self._group_terms(group)
                d_time += g_time
                d_flops += g_flops
                self._apply_flags(violations, flags, +1)
            total_time = base_time + d_time
            total_flops = base_flops + d_flops
            raw = (
                total_flops / total_time / 1e9 if total_time > 0 else 0.0
            )
            score = penalized_fitness(raw, violations, self.penalties)
            out.append(SurrogateVariant(score, individual, drop, add))
        return out


def surrogate_scorer(
    problem: FusionProblem,
    device: DeviceSpec,
    objective: ObjectiveFn,
    penalties: PenaltyParams,
) -> SurrogateScorer:
    """A :class:`SurrogateScorer` sharing the compiled evaluator's memos."""
    return SurrogateScorer(problem, device, objective, penalties)


def _rank_with_ties(values) -> List[float]:
    """Fractional ranks (1-based, ties averaged) of ``values``."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = rank
        i = j + 1
    return ranks


def spearman_rank_correlation(xs, ys) -> Optional[float]:
    """Spearman's rho between two paired samples (ties averaged).

    Returns ``None`` when the correlation is undefined: fewer than two
    pairs, or either sample constant.  Used to audit the surrogate
    pre-filter — rho near 1 means the analytic-only ranking agrees with
    the exact penalized fitness on the admitted offspring.
    """
    if len(xs) != len(ys):
        raise SearchError("rank correlation needs paired samples")
    n = len(xs)
    if n < 2:
        return None
    rx = _rank_with_ties(list(xs))
    ry = _rank_with_ties(list(ys))
    mean = (n + 1) / 2.0
    cov = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    var_x = sum((a - mean) ** 2 for a in rx)
    var_y = sum((b - mean) ** 2 for b in ry)
    if var_x <= 0 or var_y <= 0:
        return None
    return cov / (var_x * var_y) ** 0.5


def evaluate_individual_reference(
    problem: FusionProblem,
    individual: Grouping,
    device: DeviceSpec,
    objective: ObjectiveFn,
    penalties: PenaltyParams,
) -> Tuple[float, Violations]:
    """The direct (uncompiled) fitness evaluation, kept as the oracle the
    compiled path is differential-tested and benchmarked against."""
    raw = objective(problem, individual, device)
    violations = evaluate_violations(problem, individual)
    return penalized_fitness(raw, violations, penalties), violations


def evaluate_individual(
    problem: FusionProblem,
    individual: Grouping,
    device: DeviceSpec,
    objective: ObjectiveFn,
    penalties: PenaltyParams,
) -> Tuple[float, Violations]:
    """One full fitness evaluation: objective, violations, penalty.

    This is the unit of work the search-throughput layer memoizes and
    parallelizes — it is a pure function of its arguments, which is what
    makes content-addressed caching and out-of-order workers safe.
    Routed through the memoizing :class:`CompiledFitness` evaluator
    unless ``REPRO_FITNESS_COMPILE`` disables it.
    """
    if fitness_compile_enabled():
        return compiled_fitness(problem, device, objective, penalties).evaluate(
            individual
        )
    return evaluate_individual_reference(
        problem, individual, device, objective, penalties
    )


register_objective("projected_gflops", projected_gflops)

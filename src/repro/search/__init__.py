"""Optimization package: grouped GA with lazy fission (GGA)."""

from .fitness_cache import (
    CacheStats,
    FitnessCache,
    NullCache,
    canonical_encoding,
    content_key,
    get_shared_cache,
    individual_seed,
    reset_shared_cache,
)
from .gga import GGA, GenerationStats, SearchResult, run_search
from .islands import IslandGGA, MigrationBus, island_params, island_seed
from .grouping import (
    NOMINAL_BLOCK,
    FusionProblem,
    Grouping,
    NodeInfo,
    Violations,
    evaluate_violations,
    singleton_grouping,
)
from .objective import (
    evaluate_individual,
    get_objective,
    group_projection_time,
    group_volume,
    projected_gflops,
    projected_time_s,
    register_objective,
    spearman_rank_correlation,
    surrogate_score,
    surrogate_scorer,
    SurrogateScorer,
    SurrogateVariant,
)
from .parallel import (
    PopulationEvaluator,
    evaluate_population_sequential,
    executor_kind_from_env,
    workers_from_env,
)
from .operators import (
    crossover,
    lazy_fission_repair,
    mutate,
    mutate_fission_toggle,
    mutate_merge,
    mutate_move,
    mutate_split,
    random_grouping,
)
from .params import GAParams, default_params, fast_params
from .penalty import PenaltyParams, penalized_fitness
from .problem_builder import BuiltProblem, CodegenBinding, build_problem

__all__ = [
    "FusionProblem", "NodeInfo", "Grouping", "Violations",
    "evaluate_violations", "singleton_grouping", "NOMINAL_BLOCK",
    "GGA", "run_search", "SearchResult", "GenerationStats",
    "IslandGGA", "MigrationBus", "island_params", "island_seed",
    "projected_gflops", "projected_time_s", "group_volume",
    "group_projection_time", "register_objective", "get_objective",
    "evaluate_individual", "surrogate_score", "spearman_rank_correlation",
    "surrogate_scorer", "SurrogateScorer", "SurrogateVariant",
    "GAParams", "default_params", "fast_params",
    "PenaltyParams", "penalized_fitness",
    "build_problem", "BuiltProblem", "CodegenBinding",
    "crossover", "mutate", "mutate_merge", "mutate_split", "mutate_move",
    "mutate_fission_toggle", "lazy_fission_repair", "random_grouping",
    "FitnessCache", "NullCache", "CacheStats", "canonical_encoding",
    "content_key", "individual_seed", "get_shared_cache",
    "reset_shared_cache",
    "PopulationEvaluator", "evaluate_population_sequential",
    "workers_from_env", "executor_kind_from_env",
]

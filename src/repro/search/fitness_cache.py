"""Content-addressed fitness memoization for the GGA search.

The paper reports that fitness evaluation dominates GGA runtime (> 90%),
and the search revisits the same partitions constantly: elitism copies
individuals verbatim, tournament selection duplicates parents, mutation
frequently produces a grouping the population has already seen, and
restarted runs re-walk early generations.  This module gives every
grouping a *content address* — a stable digest of its canonical partition
encoding — so a fitness computed once is never recomputed, across
generations, mutations, and GGA restarts sharing one process.

The cache is a bounded, thread-safe LRU keyed on
``(problem namespace, partition digest)``; the namespace is the owning
problem's fingerprint so one process-wide cache can serve many search
problems without collisions.

Environment configuration (checked once per lookup-free construction):

``REPRO_FITNESS_CACHE``
    ``0`` / ``false`` / ``off`` disables memoization entirely.
``REPRO_FITNESS_CACHE_SIZE``
    Maximum number of retained entries (default 1_048_576).
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .grouping import Grouping

ENV_CACHE_ENABLED = "REPRO_FITNESS_CACHE"
ENV_CACHE_SIZE = "REPRO_FITNESS_CACHE_SIZE"
DEFAULT_MAX_ENTRIES = 1_048_576

_FALSY = {"0", "false", "off", "no"}


def cache_enabled_from_env(default: bool = True) -> bool:
    """Whether memoization is allowed by the environment."""
    raw = os.environ.get(ENV_CACHE_ENABLED)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def cache_size_from_env(default: int = DEFAULT_MAX_ENTRIES) -> int:
    raw = os.environ.get(ENV_CACHE_SIZE)
    if raw is None:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def canonical_encoding(individual: Grouping) -> Tuple:
    """Order-independent canonical form of a partition.

    Two :class:`Grouping` objects describing the same partition (groups
    listed in any order, members in any order) encode identically.
    """
    return (
        tuple(sorted(individual.split)),
        tuple(sorted(tuple(sorted(group)) for group in individual.groups)),
    )


def content_key(individual: Grouping, namespace: str = "") -> str:
    """Content address of a grouping within ``namespace``."""
    payload = repr((namespace, canonical_encoding(individual)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def individual_seed(individual: Grouping, base_seed: int = 0) -> int:
    """A schedule-independent seed derived from the grouping's content.

    Stochastic custom objectives can call this to draw reproducible
    randomness that does not depend on worker count or evaluation order.
    """
    return (int(content_key(individual)[:16], 16) ^ base_seed) & 0x7FFFFFFF


@dataclass
class CacheStats:
    """Lookup counters of one :class:`FitnessCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: entries rejected by read-side validation and dropped
    invalid: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def validate_fitness_result(value: Any) -> bool:
    """Is ``value`` a well-formed ``(fitness, Violations)`` pair?

    The cache is long-lived and process-wide, so a corrupted entry (a
    poisoned test value, a partially unpickled object from a crashed
    worker, an incompatible type from an older run) must surface as a
    cache *miss*, never as a GGA crash.  Validation requires a real
    finite-or-infinite number (not a bool) plus a violations object, and
    that the pair round-trips through pickle so process-pool transport
    cannot fail later.
    """
    import math
    import pickle

    if not isinstance(value, tuple) or len(value) != 2:
        return False
    fitness, violations = value
    if isinstance(fitness, bool) or not isinstance(fitness, (int, float)):
        return False
    if isinstance(fitness, float) and math.isnan(fitness):
        return False
    if violations is None or not hasattr(violations, "total"):
        return False
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


class FitnessCache:
    """Bounded thread-safe LRU mapping content keys to fitness results."""

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self.max_entries = max_entries or cache_size_from_env()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str, validator: Optional[Any] = None) -> Optional[Any]:
        """Look up ``key``; an entry rejected by ``validator`` is dropped
        and reported as a miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
                return None
            if validator is not None and not validator(value):
                del self._entries[key]
                self.stats.invalid += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def discard(self, key: str) -> None:
        """Remove ``key`` if present (recovery from detected corruption)."""
        with self._lock:
            self._entries.pop(key, None)

    def export_entries(
        self, limit: Optional[int] = None
    ) -> "list[Tuple[str, Any]]":
        """Snapshot of the entries, most-recently-used last.

        ``limit`` keeps only the most recent entries — the persistence
        layer (:mod:`repro.store.stage_cache`) uses this to bound the
        warm-start payload written after each search.
        """
        with self._lock:
            items = list(self._entries.items())
        if limit is not None and len(items) > limit:
            items = items[-limit:]
        return items

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()


class NullCache:
    """Memoization disabled: every lookup misses, nothing is stored."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    def __len__(self) -> int:
        return 0

    def get(self, key: str, validator: Optional[Any] = None) -> Optional[Any]:
        self.stats.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        pass

    def discard(self, key: str) -> None:
        pass

    def export_entries(self, limit: Optional[int] = None) -> "list[Tuple[str, Any]]":
        return []

    def clear(self) -> None:
        self.stats = CacheStats()


_shared_cache: Optional[FitnessCache] = None
_shared_lock = threading.Lock()


def get_shared_cache() -> FitnessCache:
    """The process-wide cache shared by GGA instances (restart survival)."""
    global _shared_cache
    with _shared_lock:
        if _shared_cache is None:
            _shared_cache = FitnessCache()
        return _shared_cache


def reset_shared_cache() -> None:
    """Drop the process-wide cache (tests / benchmarks)."""
    global _shared_cache
    with _shared_lock:
        _shared_cache = None

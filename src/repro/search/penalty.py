"""The dynamic penalty function with lazy-fission relaxation (§4.1, Eq. 1).

The paper penalizes candidate solutions as

``f_p(x) = f(x) + Σ C_i δ_i − C_SM δ_SM``

where ``C_i`` penalizes each violated constraint and ``C_SM`` *relaxes* the
shared-memory capacity constraint when fission of a cached array is
possible (``C_SM > 0``), and penalizes it further otherwise (``C_SM < 0``).
With a maximized objective the penalties enter with negative sign; we keep
the same structure with ``C_i`` magnitudes expressed as fitness units
(GFLOPS).
"""

from __future__ import annotations

from dataclasses import dataclass

from .grouping import Violations


@dataclass(frozen=True)
class PenaltyParams:
    """Penalty constants (GA parameter file entries)."""

    #: per non-convex group
    c_convexity: float = 200.0
    #: per group exceeding the shared-memory capacity
    c_shared_mem: float = 120.0
    #: per group containing an unfusable kernel
    c_unfusable: float = 200.0
    #: per group the code generator cannot realize (WAR / wave depth)
    c_unrealizable: float = 180.0
    #: lazy-fission relaxation: how much of the shared-memory penalty is
    #: refunded when the violating group can be fissioned (0 <= relax <= 1)
    c_sm_relax: float = 0.75


def penalized_fitness(
    raw_fitness: float, violations: Violations, params: PenaltyParams
) -> float:
    """Apply Eq. 1 to a raw objective value (maximization form).

    Smem-violating groups that contain a fissionable member keep a
    ``c_sm_relax`` fraction of the penalty refunded, so such boundary
    solutions stay attractive enough for the evolving search to repair them
    by fission rather than discard them.
    """
    penalty = 0.0
    penalty += params.c_convexity * violations.non_convex
    penalty += params.c_unfusable * violations.unfusable
    penalty += params.c_unrealizable * violations.unrealizable
    hard_smem = violations.smem_over - violations.relaxable
    penalty += params.c_shared_mem * hard_smem
    penalty += params.c_shared_mem * (1.0 - params.c_sm_relax) * violations.relaxable
    return raw_fitness - penalty

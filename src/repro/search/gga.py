"""The grouped genetic algorithm driver (§5.4).

Evolves partitions of the target kernel invocations under the penalized
objective, with lazy fission embedded as a repair operator that fires on
individuals stuck at the shared-memory boundary.  Tracks the statistics the
paper reports: fitness trajectory, average fissions per generation and the
generation of convergence (used for the filtering experiment, Fig. 8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import SearchError
from ..gpu.device import DeviceSpec
from ..observability.metrics import get_registry
from ..observability.tracing import span
from .fitness_cache import (
    FitnessCache,
    NullCache,
    cache_enabled_from_env,
    get_shared_cache,
)
from .grouping import (
    FusionProblem,
    Grouping,
    Violations,
    singleton_grouping,
)
from .objective import get_objective, projected_time_s
from .operators import (
    crossover,
    lazy_fission_repair,
    make_grouping,
    mutate,
    random_grouping,
)
from .parallel import PopulationEvaluator
from .params import GAParams


@dataclass
class GenerationStats:
    """Per-generation statistics.

    Beyond the paper's fitness trajectory, each row samples the
    penalty-pressure and evaluator health counters that feed
    ``search_telemetry.jsonl``.  The ``cache_*`` / ``evaluations`` /
    failure counters are *cumulative* evaluator totals at the end of the
    generation (difference consecutive rows for per-generation deltas).
    """

    generation: int
    best_fitness: float
    best_feasible_fitness: float
    mean_fitness: float
    fissions: int
    feasible_count: int
    #: population fitness standard deviation (diversity signal)
    std_fitness: float = 0.0
    #: evaluations this generation whose Eq. 1 penalty term fired
    penalty_activations: int = 0
    cache_hits: int = 0
    cache_lookups: int = 0
    evaluations: int = 0
    worker_failures: int = 0
    eval_timeouts: int = 0
    fallback_evaluations: int = 0


@dataclass
class SearchResult:
    """Outcome of one GGA run."""

    best: Grouping
    best_fitness: float
    #: projected program time of the best individual (s)
    projected_time_s: float
    history: List[GenerationStats]
    generations_run: int
    #: generation at which the best-feasible fitness reached 99.9% of final
    converged_at: int
    #: average lazy fissions applied per generation
    avg_fissions_per_generation: float
    #: objective evaluations actually executed (fitness-cache misses)
    evaluations: int
    #: fitness lookups served from the content-addressed cache
    cache_hits: int = 0
    #: total fitness lookups this run (hits + misses)
    fitness_lookups: int = 0
    #: the last generation's population (cross-run warm-start payload);
    #: empty when the result was reconstructed from the artifact store
    final_population: List[Grouping] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.fitness_lookups if self.fitness_lookups else 0.0

    @property
    def fused_group_count(self) -> int:
        return len(self.best.fused_groups())

    @property
    def new_kernel_count(self) -> int:
        return len(self.best.groups)


class GGA:
    """Grouped genetic algorithm over a :class:`FusionProblem`.

    Fitness evaluation goes through the search-throughput layer: a
    content-addressed :class:`~repro.search.fitness_cache.FitnessCache`
    (shared process-wide by default, so repeated groupings cost nothing
    across generations, mutations, and restarts) and an optional
    ``concurrent.futures`` population evaluator
    (:class:`~repro.search.parallel.PopulationEvaluator`).
    """

    def __init__(
        self,
        problem: FusionProblem,
        device: DeviceSpec,
        params: Optional[GAParams] = None,
        cache: Optional[FitnessCache] = None,
        seed_population: Optional[Sequence[Grouping]] = None,
    ) -> None:
        self.problem = problem
        self.device = device
        self.params = params or GAParams()
        #: individuals injected into generation 0 (cross-run warm start);
        #: individuals that no longer cover the problem are dropped
        self.seed_population: List[Grouping] = [
            g for g in (seed_population or []) if g.covers(problem)
        ]
        self.objective = get_objective(self.params.objective)
        self.rng = random.Random(self.params.seed)
        if cache is None:
            if self.params.fitness_cache and cache_enabled_from_env():
                cache = get_shared_cache()
            else:
                cache = NullCache()  # type: ignore[assignment]
        self.cache = cache
        # fitness depends on the problem, the device, the objective and the
        # penalty constants — all of them enter the cache namespace
        namespace = "|".join((
            problem.fingerprint(),
            device.name,
            self.params.objective,
            repr(self.params.penalties),
        ))
        self.evaluator = PopulationEvaluator(
            problem,
            device,
            self.objective,
            self.params.penalties,
            objective_name=self.params.objective,
            cache=cache,
            namespace=namespace,
            workers=None if self.params.workers == 0 else self.params.workers,
            executor=self.params.executor,
            base_seed=self.params.seed,
        )

    # ------------------------------------------------------------------- eval

    @property
    def evaluations(self) -> int:
        """Objective evaluations actually executed (cache misses)."""
        return self.evaluator.evaluations

    def evaluate(self, individual: Grouping) -> Tuple[float, Violations]:
        return self.evaluator.evaluate(individual)

    def _tournament(
        self, population: List[Grouping], fitnesses: List[float]
    ) -> Grouping:
        best_idx = None
        for _ in range(self.params.tournament_size):
            idx = self.rng.randrange(len(population))
            if best_idx is None or fitnesses[idx] > fitnesses[best_idx]:
                best_idx = idx
        assert best_idx is not None
        return population[best_idx]

    # -------------------------------------------------------------------- run

    def run(self) -> SearchResult:
        params = self.params
        if params.population < 2:
            raise SearchError("population must be at least 2")
        mutation_rates = (
            params.mutate_merge,
            params.mutate_split,
            params.mutate_move,
            params.mutate_fission,
        )
        # generation 0: the identity individual, then any warm-start seeds
        # (a previous run's best partition + final population), then
        # mutation-diversified copies of the seeds — or purely random
        # individuals on a cold start
        population: List[Grouping] = [singleton_grouping(self.problem)]
        for seed in self.seed_population:
            if len(population) >= params.population:
                break
            population.append(seed)
        while len(population) < params.population:
            if self.seed_population:
                base = self.seed_population[
                    len(population) % len(self.seed_population)
                ]
                population.append(
                    mutate(self.problem, base, self.rng, mutation_rates)
                )
            else:
                population.append(random_grouping(self.problem, self.rng))

        history: List[GenerationStats] = []
        best: Optional[Grouping] = None
        best_fitness = float("-inf")
        best_feasible: Optional[Grouping] = None
        best_feasible_fitness = float("-inf")
        stall = 0

        registry = get_registry()
        generations_run = 0
        for generation in range(params.generations):
            generations_run = generation + 1
            with span(f"gga:gen:{generation}") as gen_span:
                with span("eval", batch="population", size=len(population)):
                    evaluated = self.evaluator.evaluate_many(population)
                fitnesses = [f for f, _ in evaluated]
                improved = False
                feasible_count = 0
                penalty_activations = 0
                for ind, (fitness, violations) in zip(population, evaluated):
                    if fitness > best_fitness:
                        best, best_fitness = ind, fitness
                    if violations.feasible:
                        feasible_count += 1
                        if fitness > best_feasible_fitness:
                            best_feasible, best_feasible_fitness = ind, fitness
                            improved = True
                    else:
                        penalty_activations += 1
                stall = 0 if improved else stall + 1

                fissions_this_gen = 0
                # next generation
                ranked = sorted(
                    range(len(population)), key=lambda i: fitnesses[i], reverse=True
                )
                next_pop: List[Grouping] = [
                    population[i] for i in ranked[: params.elitism]
                ]
                # breed the full offspring batch first (sequential: consumes the
                # rng stream), then evaluate it in one parallel, memoized sweep;
                # lazy fission repairs fire on the offspring stuck at the
                # shared-memory boundary
                offspring: List[Grouping] = []
                while len(next_pop) + len(offspring) < params.population:
                    parent_a = self._tournament(population, fitnesses)
                    if self.rng.random() < params.crossover_rate:
                        parent_b = self._tournament(population, fitnesses)
                        child = crossover(self.problem, parent_a, parent_b, self.rng)
                    else:
                        child = parent_a
                    child = mutate(self.problem, child, self.rng, mutation_rates)
                    offspring.append(child)
                with span("eval", batch="offspring", size=len(offspring)):
                    child_results = self.evaluator.evaluate_many(offspring)
                for child, (_, violations) in zip(offspring, child_results):
                    if not violations.feasible:
                        penalty_activations += 1
                    if violations.smem_over > 0:
                        child, fissions = lazy_fission_repair(
                            self.problem, child, self.rng
                        )
                        fissions_this_gen += fissions
                    next_pop.append(child)

                mean_fitness = sum(fitnesses) / len(fitnesses)
                std_fitness = (
                    sum((f - mean_fitness) ** 2 for f in fitnesses) / len(fitnesses)
                ) ** 0.5
                history.append(
                    GenerationStats(
                        generation=generation,
                        best_fitness=best_fitness,
                        best_feasible_fitness=(
                            best_feasible_fitness
                            if best_feasible is not None
                            else float("nan")
                        ),
                        mean_fitness=mean_fitness,
                        fissions=fissions_this_gen,
                        feasible_count=feasible_count,
                        std_fitness=std_fitness,
                        penalty_activations=penalty_activations,
                        cache_hits=self.evaluator.cache_hits,
                        cache_lookups=self.evaluator.lookups,
                        evaluations=self.evaluator.evaluations,
                        worker_failures=self.evaluator.worker_failures,
                        eval_timeouts=self.evaluator.timeouts,
                        fallback_evaluations=self.evaluator.fallback_evaluations,
                    )
                )
                registry.inc("gga_generations_total")
                registry.inc("gga_penalty_activations_total", penalty_activations)
                registry.inc("gga_fissions_total", fissions_this_gen)
                registry.set_gauge("gga_best_fitness", best_fitness)
                gen_span.set(
                    best=best_fitness,
                    feasible=feasible_count,
                    penalties=penalty_activations,
                )
            population = next_pop
            if params.stall_generations and stall >= params.stall_generations:
                break

        if best_feasible is None:
            best_feasible = self._repair_to_feasible(best or population[0])
            best_feasible_fitness, _ = self.evaluate(best_feasible)

        converged_at = generations_run - 1
        if history:
            final = best_feasible_fitness
            for stats in history:
                if (
                    stats.best_feasible_fitness == stats.best_feasible_fitness  # not NaN
                    and stats.best_feasible_fitness >= final * 0.999
                ):
                    converged_at = stats.generation
                    break
        total_fissions = sum(s.fissions for s in history)
        self.evaluator.close()
        return SearchResult(
            best=best_feasible,
            best_fitness=best_feasible_fitness,
            projected_time_s=projected_time_s(
                self.problem, best_feasible, self.device
            ),
            history=history,
            generations_run=generations_run,
            converged_at=converged_at,
            avg_fissions_per_generation=(
                total_fissions / generations_run if generations_run else 0.0
            ),
            evaluations=self.evaluations,
            cache_hits=self.evaluator.cache_hits,
            fitness_lookups=self.evaluator.lookups,
            final_population=list(population),
        )

    def _repair_to_feasible(self, individual: Grouping) -> Grouping:
        """Break infeasible groups into singletons until feasible."""
        from .grouping import cyclic_group_indices

        current = individual
        for _ in range(len(current.groups) + 2):
            active = current.active_nodes(self.problem)
            _, reach = self.problem.node_oeg(active)
            cyclic = cyclic_group_indices(self.problem, current)
            groups = []
            changed = False
            for index, group in enumerate(current.groups):
                feasible = len(group) <= 1 or (
                    self.problem.group_fusable(group)
                    and self.problem.group_convex(group, reach)
                    and self.problem.group_realizable(group)
                    and self.problem.group_smem_bytes(group) <= self.problem.capacity
                    and index not in cyclic
                )
                if feasible:
                    groups.append(group)
                else:
                    groups.extend(frozenset({m}) for m in sorted(group))
                    changed = True
            current = make_grouping(set(current.split), groups)
            if not changed:
                return current
        return current


def run_search(
    problem: FusionProblem,
    device: DeviceSpec,
    params: Optional[GAParams] = None,
    seed_population: Optional[Sequence[Grouping]] = None,
) -> SearchResult:
    """Convenience wrapper: construct and run the GGA.

    ``seed_population`` warm-starts generation 0 (see :class:`GGA`).
    """
    return GGA(problem, device, params, seed_population=seed_population).run()

"""The grouped genetic algorithm driver (§5.4).

Evolves partitions of the target kernel invocations under the penalized
objective, with lazy fission embedded as a repair operator that fires on
individuals stuck at the shared-memory boundary.  Tracks the statistics the
paper reports: fitness trajectory, average fissions per generation and the
generation of convergence (used for the filtering experiment, Fig. 8).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import SearchError
from ..gpu.device import DeviceSpec
from ..observability.metrics import get_registry
from ..observability.tracing import span
from .fitness_cache import (
    FitnessCache,
    NullCache,
    cache_enabled_from_env,
    get_shared_cache,
)
from .grouping import (
    FusionProblem,
    Grouping,
    Violations,
    singleton_grouping,
)
from .objective import (
    SurrogateVariant,
    get_objective,
    projected_time_s,
    spearman_rank_correlation,
    surrogate_scorer,
)
from .operators import (
    crossover,
    lazy_fission_repair,
    make_grouping,
    mutate,
    random_grouping,
)
from .parallel import PopulationEvaluator
from .params import GAParams


@dataclass
class GenerationStats:
    """Per-generation statistics.

    Beyond the paper's fitness trajectory, each row samples the
    penalty-pressure and evaluator health counters that feed
    ``search_telemetry.jsonl``.  The ``cache_*`` / ``evaluations`` /
    failure counters are *cumulative* evaluator totals at the end of the
    generation (difference consecutive rows for per-generation deltas).
    """

    generation: int
    best_fitness: float
    best_feasible_fitness: float
    mean_fitness: float
    fissions: int
    feasible_count: int
    #: population fitness standard deviation (diversity signal)
    std_fitness: float = 0.0
    #: evaluations this generation whose Eq. 1 penalty term fired
    penalty_activations: int = 0
    cache_hits: int = 0
    cache_lookups: int = 0
    evaluations: int = 0
    worker_failures: int = 0
    eval_timeouts: int = 0
    fallback_evaluations: int = 0
    #: which island produced this row (0 in single-population mode)
    island: int = 0
    #: offspring bred this generation (== admitted when the surrogate
    #: pre-filter is off)
    surrogate_candidates: int = 0
    #: offspring admitted to exact evaluation by the surrogate ranking
    surrogate_admitted: int = 0
    #: Spearman correlation between surrogate and exact offspring ranks
    #: (NaN when the pre-filter is off or the sample is degenerate)
    surrogate_rank_correlation: float = float("nan")
    #: wall-clock seconds since the search started, sampled at the end of
    #: the generation (time-to-target-fitness measurements difference this)
    elapsed_s: float = 0.0
    #: migrants accepted into this island since the previous row
    migrants_in: int = 0


@dataclass
class SearchResult:
    """Outcome of one GGA run."""

    best: Grouping
    best_fitness: float
    #: projected program time of the best individual (s)
    projected_time_s: float
    history: List[GenerationStats]
    generations_run: int
    #: generation at which the best-feasible fitness reached 99.9% of final
    converged_at: int
    #: average lazy fissions applied per generation
    avg_fissions_per_generation: float
    #: objective evaluations actually executed (fitness-cache misses)
    evaluations: int
    #: fitness lookups served from the content-addressed cache
    cache_hits: int = 0
    #: total fitness lookups this run (hits + misses)
    fitness_lookups: int = 0
    #: the last generation's population (cross-run warm-start payload);
    #: empty when the result was reconstructed from the artifact store
    final_population: List[Grouping] = field(default_factory=list)
    #: island subpopulations the search ran (1 = classic GGA)
    islands: int = 1
    #: migrant individuals accepted across all islands
    migrations_received: int = 0
    #: migration payloads dropped (fault injection / corrupt store entries)
    migrations_dropped: int = 0
    #: offspring the surrogate pre-filter kept away from exact evaluation
    surrogate_skipped: int = 0
    #: mean per-generation surrogate-vs-exact Spearman correlation
    #: (NaN when the pre-filter never ran)
    surrogate_rank_correlation: float = float("nan")
    #: wall-clock seconds the search spent (0 for store-reconstructed results)
    wall_time_s: float = 0.0
    #: DemotionRecord-style notes from the migration bus (dropped payloads);
    #: emitted as ``migration_note`` rows in search_telemetry.jsonl
    migration_notes: List[dict] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.fitness_lookups if self.fitness_lookups else 0.0

    @property
    def fused_group_count(self) -> int:
        return len(self.best.fused_groups())

    @property
    def new_kernel_count(self) -> int:
        return len(self.best.groups)


class GGA:
    """Grouped genetic algorithm over a :class:`FusionProblem`.

    Fitness evaluation goes through the search-throughput layer: a
    content-addressed :class:`~repro.search.fitness_cache.FitnessCache`
    (shared process-wide by default, so repeated groupings cost nothing
    across generations, mutations, and restarts) and an optional
    ``concurrent.futures`` population evaluator
    (:class:`~repro.search.parallel.PopulationEvaluator`).
    """

    def __init__(
        self,
        problem: FusionProblem,
        device: DeviceSpec,
        params: Optional[GAParams] = None,
        cache: Optional[FitnessCache] = None,
        seed_population: Optional[Sequence[Grouping]] = None,
    ) -> None:
        self.problem = problem
        self.device = device
        self.params = params or GAParams()
        #: individuals injected into generation 0 (cross-run warm start);
        #: individuals that no longer cover the problem are dropped
        self.seed_population: List[Grouping] = [
            g for g in (seed_population or []) if g.covers(problem)
        ]
        self.objective = get_objective(self.params.objective)
        self.rng = random.Random(self.params.seed)
        #: island index stamped on telemetry rows (set by the island driver)
        self.island = 0
        self._initialized = False
        if cache is None:
            if self.params.fitness_cache and cache_enabled_from_env():
                cache = get_shared_cache()
            else:
                cache = NullCache()  # type: ignore[assignment]
        self.cache = cache
        # fitness depends on the problem, the device, the objective and the
        # penalty constants — all of them enter the cache namespace
        namespace = "|".join((
            problem.fingerprint(),
            device.name,
            self.params.objective,
            repr(self.params.penalties),
        ))
        self.evaluator = PopulationEvaluator(
            problem,
            device,
            self.objective,
            self.params.penalties,
            objective_name=self.params.objective,
            cache=cache,
            namespace=namespace,
            workers=None if self.params.workers == 0 else self.params.workers,
            executor=self.params.executor,
            base_seed=self.params.seed,
        )

    # ------------------------------------------------------------------- eval

    @property
    def evaluations(self) -> int:
        """Objective evaluations actually executed (cache misses)."""
        return self.evaluator.evaluations

    def evaluate(self, individual: Grouping) -> Tuple[float, Violations]:
        return self.evaluator.evaluate(individual)

    def _tournament(
        self, population: List[Grouping], fitnesses: List[float]
    ) -> Grouping:
        best_idx = None
        for _ in range(self.params.tournament_size):
            idx = self.rng.randrange(len(population))
            if best_idx is None or fitnesses[idx] > fitnesses[best_idx]:
                best_idx = idx
        assert best_idx is not None
        return population[best_idx]

    # -------------------------------------------------------------------- run
    #
    # The run is decomposed into initialize() / step() / finalize() so the
    # island driver (repro.search.islands) can interleave generations of
    # several GGA instances and inject migrants between epochs.  run() is
    # the classic composition and is bit-identical to the pre-island code:
    # the per-step body consumes the rng stream and calls the evaluator in
    # exactly the original order when the surrogate pre-filter is off.

    def initialize(self) -> None:
        """Build generation 0 and reset the run-state trackers."""
        params = self.params
        if params.population < 2:
            raise SearchError("population must be at least 2")
        if not 0.0 < params.surrogate_topk <= 1.0:
            raise SearchError("surrogate_topk must be in (0, 1]")
        self._mutation_rates = (
            params.mutate_merge,
            params.mutate_split,
            params.mutate_move,
            params.mutate_fission,
        )
        # generation 0: the identity individual, then any warm-start seeds
        # (a previous run's best partition + final population), then
        # mutation-diversified copies of the seeds — or purely random
        # individuals on a cold start
        population: List[Grouping] = [singleton_grouping(self.problem)]
        for seed in self.seed_population:
            if len(population) >= params.population:
                break
            population.append(seed)
        screened = 0
        fill = params.population - len(population)
        if (
            fill > 0
            and params.surrogate_topk < 1.0
            and not self.seed_population
        ):
            # surrogate-screened cold start: oversample the random fill by
            # 1/topk and keep the model's pick, so the pre-filter shapes
            # generation 0 too (the plain path is untouched at topk=1)
            scorer = self._scorer()
            screened = math.ceil(fill / params.surrogate_topk)
            candidates = [
                random_grouping(self.problem, self.rng)
                for _ in range(screened)
            ]
            scores = [scorer.score(c) for c in candidates]
            order = sorted(range(screened), key=lambda i: (-scores[i], i))
            population.extend(candidates[i] for i in sorted(order[:fill]))
        while len(population) < params.population:
            if self.seed_population:
                base = self.seed_population[
                    len(population) % len(self.seed_population)
                ]
                population.append(
                    mutate(self.problem, base, self.rng, self._mutation_rates)
                )
            else:
                population.append(random_grouping(self.problem, self.rng))
        self.population = population
        self.history: List[GenerationStats] = []
        self.best: Optional[Grouping] = None
        self.best_fitness = float("-inf")
        self.best_feasible: Optional[Grouping] = None
        self.best_feasible_fitness = float("-inf")
        self._stall = 0
        self._generation = 0
        self._start_time = time.perf_counter()
        self._elites: List[Grouping] = []
        self.migrants_received = 0
        self._migrants_pending = 0
        self._surrogate_candidates = screened
        self._surrogate_admitted = min(screened, fill)
        self._rank_correlations: List[float] = []
        self._initialized = True

    @property
    def done(self) -> bool:
        """True once the generation budget or the stall limit is exhausted."""
        params = self.params
        if self._generation >= params.generations:
            return True
        return bool(
            params.stall_generations and self._stall >= params.stall_generations
        )

    def top_individuals(self, count: int) -> List[Grouping]:
        """The best ``count`` individuals of the last evaluated generation
        (fitness-ranked; the migration payload an island emits)."""
        return list(self._elites[:count])

    def receive_migrants(self, migrants: Sequence[Grouping]) -> int:
        """Replace the tail of the current population with ``migrants``.

        The tail holds the most recently bred offspring — the individuals
        with the least selection pressure behind them — so replacement is
        deterministic without re-evaluating the population.  Migrants
        already present (by value) or not covering the problem are
        skipped.  Returns the number accepted.
        """
        accepted = 0
        current = set(self.population)
        for migrant in migrants:
            if migrant in current or not migrant.covers(self.problem):
                continue
            slot = len(self.population) - 1 - accepted
            if slot < self.params.elitism:
                break
            self.population[slot] = migrant
            current.add(migrant)
            accepted += 1
        self.migrants_received += accepted
        self._migrants_pending += accepted
        return accepted

    def _scorer(self):
        """The surrogate scorer, created on first use (shares the
        compiled evaluator's per-group memos with exact evaluation)."""
        scorer = getattr(self, "_surrogate_scorer", None)
        if scorer is None:
            scorer = surrogate_scorer(
                self.problem, self.device, self.objective,
                self.params.penalties,
            )
            self._surrogate_scorer = scorer
        return scorer

    def _breed(self, fitnesses: List[float], count: int) -> List[Grouping]:
        """Breed ``count`` offspring (sequential: consumes the rng stream)."""
        params = self.params
        offspring: List[Grouping] = []
        while len(offspring) < count:
            parent_a = self._tournament(self.population, fitnesses)
            if self.rng.random() < params.crossover_rate:
                parent_b = self._tournament(self.population, fitnesses)
                child = crossover(self.problem, parent_a, parent_b, self.rng)
            else:
                child = parent_a
            child = mutate(self.problem, child, self.rng, self._mutation_rates)
            offspring.append(child)
        return offspring

    def step(self) -> None:
        """Advance the search by one generation."""
        params = self.params
        population = self.population
        generation = self._generation
        registry = get_registry()
        with span(f"gga:gen:{generation}") as gen_span:
            with span("eval", batch="population", size=len(population)):
                evaluated = self.evaluator.evaluate_many(population)
            fitnesses = [f for f, _ in evaluated]
            improved = False
            feasible_count = 0
            penalty_activations = 0
            for ind, (fitness, violations) in zip(population, evaluated):
                if fitness > self.best_fitness:
                    self.best, self.best_fitness = ind, fitness
                if violations.feasible:
                    feasible_count += 1
                    if fitness > self.best_feasible_fitness:
                        self.best_feasible = ind
                        self.best_feasible_fitness = fitness
                        improved = True
                else:
                    penalty_activations += 1
            self._stall = 0 if improved else self._stall + 1

            fissions_this_gen = 0
            # next generation
            ranked = sorted(
                range(len(population)), key=lambda i: fitnesses[i], reverse=True
            )
            self._elites = [population[i] for i in ranked]
            next_pop: List[Grouping] = [
                population[i] for i in ranked[: params.elitism]
            ]
            # breed the full offspring batch first (sequential: consumes the
            # rng stream), then evaluate it in one parallel, memoized sweep;
            # lazy fission repairs fire on the offspring stuck at the
            # shared-memory boundary.  With surrogate_topk < 1 the batch is
            # oversampled by 1/topk and ranked by the analytic-model-only
            # surrogate; only the top slice reaches exact evaluation.
            needed = params.population - len(next_pop)
            surrogate_corr = float("nan")
            if params.surrogate_topk < 1.0 and needed > 0:
                scorer = self._scorer()
                bred = self._breed(fitnesses, needed)
                if scorer.supports_variants:
                    # each bred child seeds a model-scored neighbourhood:
                    # single merge/split/move edits priced as deltas
                    # against the parent's per-group terms, materialized
                    # only on admission
                    extra_per = max(
                        0, math.ceil(1.0 / params.surrogate_topk) - 1
                    )
                    pool: List[object] = []
                    scores: List[float] = []
                    for child in bred:
                        parts = scorer.components(child)
                        pool.append(child)
                        scores.append(scorer.score_from(parts))
                        for variant in scorer.variants(
                            child, parts, self.rng, extra_per
                        ):
                            pool.append(variant)
                            scores.append(variant.score)
                else:
                    # custom objective / compile off: oversampled breeding
                    # ranked by the plain surrogate score
                    extra = max(
                        0,
                        math.ceil(needed / params.surrogate_topk) - needed,
                    )
                    pool = bred + self._breed(fitnesses, extra)
                    scores = [scorer.score(child) for child in pool]
                gen_candidates = len(pool)
                order = sorted(
                    range(gen_candidates), key=lambda i: (-scores[i], i)
                )
                admitted = sorted(order[:needed])
                offspring = [
                    entry.materialize()
                    if isinstance(entry, SurrogateVariant)
                    else entry
                    for entry in (pool[i] for i in admitted)
                ]
                admitted_scores = [scores[i] for i in admitted]
                registry.inc("surrogate_candidates_total", gen_candidates)
                registry.inc("surrogate_admitted_total", len(offspring))
            else:
                gen_candidates = needed
                offspring = self._breed(fitnesses, needed)
                admitted_scores = []
            self._surrogate_candidates += gen_candidates
            self._surrogate_admitted += len(offspring)
            with span("eval", batch="offspring", size=len(offspring)):
                child_results = self.evaluator.evaluate_many(offspring)
            if admitted_scores:
                corr = spearman_rank_correlation(
                    admitted_scores, [f for f, _ in child_results]
                )
                if corr is not None:
                    surrogate_corr = corr
                    self._rank_correlations.append(corr)
            for child, (_, violations) in zip(offspring, child_results):
                if not violations.feasible:
                    penalty_activations += 1
                if violations.smem_over > 0:
                    child, fissions = lazy_fission_repair(
                        self.problem, child, self.rng
                    )
                    fissions_this_gen += fissions
                next_pop.append(child)

            mean_fitness = sum(fitnesses) / len(fitnesses)
            std_fitness = (
                sum((f - mean_fitness) ** 2 for f in fitnesses) / len(fitnesses)
            ) ** 0.5
            self.history.append(
                GenerationStats(
                    generation=generation,
                    best_fitness=self.best_fitness,
                    best_feasible_fitness=(
                        self.best_feasible_fitness
                        if self.best_feasible is not None
                        else float("nan")
                    ),
                    mean_fitness=mean_fitness,
                    fissions=fissions_this_gen,
                    feasible_count=feasible_count,
                    std_fitness=std_fitness,
                    penalty_activations=penalty_activations,
                    cache_hits=self.evaluator.cache_hits,
                    cache_lookups=self.evaluator.lookups,
                    evaluations=self.evaluator.evaluations,
                    worker_failures=self.evaluator.worker_failures,
                    eval_timeouts=self.evaluator.timeouts,
                    fallback_evaluations=self.evaluator.fallback_evaluations,
                    island=self.island,
                    surrogate_candidates=gen_candidates,
                    surrogate_admitted=len(offspring),
                    surrogate_rank_correlation=surrogate_corr,
                    elapsed_s=time.perf_counter() - self._start_time,
                    migrants_in=self._migrants_pending,
                )
            )
            self._migrants_pending = 0
            registry.inc("gga_generations_total")
            registry.inc("gga_penalty_activations_total", penalty_activations)
            registry.inc("gga_fissions_total", fissions_this_gen)
            registry.set_gauge("gga_best_fitness", self.best_fitness)
            gen_span.set(
                best=self.best_fitness,
                feasible=feasible_count,
                penalties=penalty_activations,
            )
        self.population = next_pop
        self._generation = generation + 1

    def finalize(self) -> SearchResult:
        """Close the evaluator and package the run into a SearchResult."""
        best_feasible = self.best_feasible
        best_feasible_fitness = self.best_feasible_fitness
        if best_feasible is None:
            best_feasible = self._repair_to_feasible(
                self.best or self.population[0]
            )
            best_feasible_fitness, _ = self.evaluate(best_feasible)

        history = self.history
        generations_run = self._generation
        converged_at = generations_run - 1
        if history:
            final = best_feasible_fitness
            for stats in history:
                if (
                    stats.best_feasible_fitness == stats.best_feasible_fitness  # not NaN
                    and stats.best_feasible_fitness >= final * 0.999
                ):
                    converged_at = stats.generation
                    break
        total_fissions = sum(s.fissions for s in history)
        correlations = self._rank_correlations
        self.evaluator.close()
        return SearchResult(
            best=best_feasible,
            best_fitness=best_feasible_fitness,
            projected_time_s=projected_time_s(
                self.problem, best_feasible, self.device
            ),
            history=history,
            generations_run=generations_run,
            converged_at=converged_at,
            avg_fissions_per_generation=(
                total_fissions / generations_run if generations_run else 0.0
            ),
            evaluations=self.evaluations,
            cache_hits=self.evaluator.cache_hits,
            fitness_lookups=self.evaluator.lookups,
            final_population=list(self.population),
            migrations_received=self.migrants_received,
            surrogate_skipped=(
                self._surrogate_candidates - self._surrogate_admitted
            ),
            surrogate_rank_correlation=(
                sum(correlations) / len(correlations)
                if correlations
                else float("nan")
            ),
            wall_time_s=time.perf_counter() - self._start_time,
        )

    def run(self) -> SearchResult:
        self.initialize()
        while not self.done:
            self.step()
        return self.finalize()

    def _repair_to_feasible(self, individual: Grouping) -> Grouping:
        """Break infeasible groups into singletons until feasible."""
        from .grouping import cyclic_group_indices

        current = individual
        for _ in range(len(current.groups) + 2):
            active = current.active_nodes(self.problem)
            _, reach = self.problem.node_oeg(active)
            cyclic = cyclic_group_indices(self.problem, current)
            groups = []
            changed = False
            for index, group in enumerate(current.groups):
                feasible = len(group) <= 1 or (
                    self.problem.group_fusable(group)
                    and self.problem.group_convex(group, reach)
                    and self.problem.group_realizable(group)
                    and self.problem.group_smem_bytes(group) <= self.problem.capacity
                    and index not in cyclic
                )
                if feasible:
                    groups.append(group)
                else:
                    groups.extend(frozenset({m}) for m in sorted(group))
                    changed = True
            current = make_grouping(set(current.split), groups)
            if not changed:
                return current
        return current


def run_search(
    problem: FusionProblem,
    device: DeviceSpec,
    params: Optional[GAParams] = None,
    seed_population: Optional[Sequence[Grouping]] = None,
    store=None,
) -> SearchResult:
    """Convenience wrapper: construct and run the GGA.

    ``seed_population`` warm-starts generation 0 (see :class:`GGA`).
    ``params.islands > 1`` routes to the island-model driver
    (:class:`repro.search.islands.IslandGGA`); ``store`` then mediates
    cross-run elite migration and is ignored in single-population mode.
    """
    params = params or GAParams()
    if params.islands > 1:
        from .islands import IslandGGA

        return IslandGGA(
            problem, device, params, seed_population=seed_population, store=store
        ).run()
    return GGA(problem, device, params, seed_population=seed_population).run()

"""Genetic operators of the grouped GA (Falkenauer-style, §5.4).

Individuals are partitions, so the operators work on *groups*, not genes:

* **group-injection crossover** — donor groups from one parent are injected
  into the other; overlapping members are first removed from the receiver;
* **merge / split / move mutations** — local partition edits biased toward
  merging groups that share data arrays (the locality signal);
* **fission toggle & lazy-fission repair** — a fissionable node switches
  between its whole and fragment representation; the repair form implements
  the paper's lazy fission: a group stuck on the shared-memory boundary
  splits a fissionable member and evicts the fragments that contribute no
  locality.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .grouping import FusionProblem, Grouping


def _normalize(groups: Sequence[FrozenSet[str]]) -> Tuple[FrozenSet[str], ...]:
    cleaned = [g for g in groups if g]
    cleaned.sort(key=lambda g: sorted(g)[0])
    return tuple(cleaned)


def make_grouping(
    split: Set[str], groups: Sequence[FrozenSet[str]]
) -> Grouping:
    return Grouping(split=frozenset(split), groups=_normalize(groups))


def ensure_whole(
    problem: FusionProblem, split: Set[str], groups: List[FrozenSet[str]], node: str
) -> None:
    """Convert ``node`` back to its whole representation (in place)."""
    if node not in split:
        return
    fragments = set(problem.fragments_of[node])
    for i, group in enumerate(list(groups)):
        if group & fragments:
            groups[i] = group - fragments
    groups[:] = [g for g in groups if g]
    groups.append(frozenset({node}))
    split.discard(node)


def ensure_split(
    problem: FusionProblem, split: Set[str], groups: List[FrozenSet[str]], node: str
) -> None:
    """Convert ``node`` to fragment representation (fragments become
    singletons, in place)."""
    if node in split or node not in problem.fragments_of:
        return
    for i, group in enumerate(list(groups)):
        if node in group:
            groups[i] = group - {node}
    groups[:] = [g for g in groups if g]
    for fragment in problem.fragments_of[node]:
        groups.append(frozenset({fragment}))
    split.add(node)


def random_grouping(
    problem: FusionProblem, rng: random.Random, merge_bias: float = 0.5
) -> Grouping:
    """A random initial individual: random merges over eligible nodes.

    A fraction of the fissionable nodes start in fragment form so the
    population carries fragment-level grouping material from generation 0
    (the lazy-fission pre-step gathered their metadata already).
    """
    split: Set[str] = set()
    groups: List[FrozenSet[str]] = []
    for node in problem.whole_nodes():
        groups.append(frozenset({node}))
    for node in problem.fragments_of:
        if rng.random() < 0.35:
            ensure_split(problem, split, groups, node)
    individual = make_grouping(split, groups)
    merges = int(len(groups) * merge_bias * rng.random())
    for _ in range(merges):
        individual = mutate_merge(problem, individual, rng) or individual
    return individual


def _fusable_groups(problem: FusionProblem, g: Grouping) -> List[int]:
    return [
        i
        for i, group in enumerate(g.groups)
        if all(problem.infos[m].eligible and problem.infos[m].fusable for m in group)
    ]


def mutate_merge(
    problem: FusionProblem, individual: Grouping, rng: random.Random
) -> Optional[Grouping]:
    """Merge two groups, preferring pairs that share a data array."""
    candidates = _fusable_groups(problem, individual)
    if len(candidates) < 2:
        return None
    first = rng.choice(candidates)
    first_arrays: Set[str] = set()
    for member in individual.groups[first]:
        first_arrays |= problem.infos[member].touched
    sharing = [
        i
        for i in candidates
        if i != first
        and any(
            problem.infos[m].touched & first_arrays for m in individual.groups[i]
        )
    ]
    pool = sharing if sharing and rng.random() < 0.8 else [i for i in candidates if i != first]
    if not pool:
        return None
    second = rng.choice(pool)
    groups = list(individual.groups)
    merged = groups[first] | groups[second]
    groups = [g for i, g in enumerate(groups) if i not in (first, second)]
    groups.append(merged)
    return make_grouping(set(individual.split), groups)


def mutate_split(
    problem: FusionProblem, individual: Grouping, rng: random.Random
) -> Optional[Grouping]:
    fused = [i for i, g in enumerate(individual.groups) if len(g) > 1]
    if not fused:
        return None
    target = rng.choice(fused)
    members = sorted(individual.groups[target])
    rng.shuffle(members)
    cut = rng.randint(1, len(members) - 1)
    groups = [g for i, g in enumerate(individual.groups) if i != target]
    groups.append(frozenset(members[:cut]))
    groups.append(frozenset(members[cut:]))
    return make_grouping(set(individual.split), groups)


def mutate_move(
    problem: FusionProblem, individual: Grouping, rng: random.Random
) -> Optional[Grouping]:
    fused = [i for i, g in enumerate(individual.groups) if len(g) > 1]
    if not fused:
        return None
    source = rng.choice(fused)
    node = rng.choice(sorted(individual.groups[source]))
    groups = list(individual.groups)
    groups[source] = groups[source] - {node}
    destinations = [
        i
        for i, g in enumerate(groups)
        if i != source
        and g
        and all(problem.infos[m].eligible and problem.infos[m].fusable for m in g)
        and problem.infos[node].fusable
    ]
    if destinations and rng.random() < 0.6:
        dest = rng.choice(destinations)
        groups[dest] = groups[dest] | {node}
    else:
        groups.append(frozenset({node}))
    return make_grouping(set(individual.split), groups)


def mutate_fission_toggle(
    problem: FusionProblem, individual: Grouping, rng: random.Random
) -> Optional[Grouping]:
    fissionable = [n for n in problem.fragments_of]
    if not fissionable:
        return None
    node = rng.choice(sorted(fissionable))
    split = set(individual.split)
    groups = list(individual.groups)
    if node in split:
        ensure_whole(problem, split, groups, node)
    else:
        ensure_split(problem, split, groups, node)
    return make_grouping(split, groups)


def lazy_fission_repair(
    problem: FusionProblem, individual: Grouping, rng: random.Random
) -> Tuple[Grouping, int]:
    """Repair smem-violating groups by fissioning a member (§4.1).

    For every group over the shared-memory budget that contains a
    fissionable whole node, the node is split; fragments that share a
    locality array with the rest of the group stay in the group, the others
    are evicted to singletons.  Returns the repaired individual and the
    number of fissions applied.
    """
    split = set(individual.split)
    groups = list(individual.groups)
    fissions = 0
    for index in range(len(groups)):
        group = groups[index]
        if len(group) <= 1:
            continue
        if problem.group_smem_bytes(group) <= problem.capacity:
            continue
        candidates = [
            m for m in sorted(group) if m in problem.fragments_of and m not in split
        ]
        if not candidates:
            continue
        node = rng.choice(candidates)
        rest = group - {node}
        rest_arrays: Set[str] = set()
        for member in rest:
            rest_arrays |= problem.infos[member].touched
        # split the node: fragments sharing arrays with the rest stay, but
        # only while the group remains within the shared-memory budget
        # (greedy re-admission); the others become singletons
        for i, g in enumerate(groups):
            if node in g:
                groups[i] = g - {node}
        keep: Set[str] = set()
        sharing = [
            f
            for f in problem.fragments_of[node]
            if problem.infos[f].touched & rest_arrays
        ]
        sharing.sort(
            key=lambda f: len(problem.infos[f].touched & rest_arrays), reverse=True
        )
        for fragment in sharing:
            candidate_group = rest | keep | {fragment}
            if problem.group_smem_bytes(candidate_group) <= problem.capacity:
                keep.add(fragment)
        for fragment in problem.fragments_of[node]:
            if fragment not in keep:
                groups.append(frozenset({fragment}))
        groups[index] = rest | keep
        split.add(node)
        fissions += 1
    return make_grouping(split, groups), fissions


def crossover(
    problem: FusionProblem,
    receiver: Grouping,
    donor: Grouping,
    rng: random.Random,
) -> Grouping:
    """Group-injection crossover: donor fused groups overwrite the receiver."""
    donor_groups = donor.fused_groups()
    if not donor_groups:
        return receiver
    count = max(1, rng.randint(1, len(donor_groups)))
    injected = rng.sample(donor_groups, count)

    split = set(receiver.split)
    groups = list(receiver.groups)
    # reconcile representations
    injected_members: Set[str] = set()
    for group in injected:
        injected_members |= group
    for node, fragments in problem.fragments_of.items():
        if node in injected_members:
            ensure_whole(problem, split, groups, node)
        elif injected_members & set(fragments):
            ensure_split(problem, split, groups, node)
    # remove injected members from receiver groups
    for i, group in enumerate(list(groups)):
        if group & injected_members:
            groups[i] = group - injected_members
    groups = [g for g in groups if g]
    groups.extend(injected)
    return make_grouping(split, groups)


def mutate(
    problem: FusionProblem,
    individual: Grouping,
    rng: random.Random,
    rates: Tuple[float, float, float, float],
) -> Grouping:
    """Apply the mutation operators with the configured probabilities."""
    merge_rate, split_rate, move_rate, fission_rate = rates
    result = individual
    if rng.random() < merge_rate:
        result = mutate_merge(problem, result, rng) or result
    if rng.random() < split_rate:
        result = mutate_split(problem, result, rng) or result
    if rng.random() < move_rate:
        result = mutate_move(problem, result, rng) or result
    if rng.random() < fission_rate:
        result = mutate_fission_toggle(problem, result, rng) or result
    return result

"""Island-model GGA with store-mediated elite migration.

Scales the search itself, now that per-evaluation cost is solved: ``K``
islands each evolve an independent subpopulation with its own RNG stream,
in lockstep *epochs* of ``migration_interval`` generations.  At every
epoch boundary each island publishes its top ``migration_size`` elites
and receives its ring neighbour's (island ``i`` imports from island
``i-1 mod K``), replacing the tail of its population.  When a persistent
artifact store is attached, elites are also written through to the
``island_migration`` namespace so a later run hydrates its islands from
where the previous one left off (the warm-start substrate, extended
per-island).

Determinism
-----------
Island evolution is a pure function of its seed: fitness is
content-addressed and pure, so the shared process-wide fitness cache
makes results independent of thread scheduling.  Island 0 keeps the base
seed, which is why ``islands=1`` is bit-identical to the classic
single-population :class:`~repro.search.gga.GGA` (the population is
split ``population // K`` ways, degenerating to the full population at
``K=1``).  Migration happens at synchronized epoch barriers, so the
exchanged payloads are schedule-independent too.

Failure containment
-------------------
A dropped or corrupt migration payload (fault seam ``island_migration``,
or a store entry that fails validation) never stops the search: the
receiving island continues solo and the event is recorded as a
``migration_note`` telemetry row — the search-layer analogue of the
codegen ladder's DemotionRecord.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..gpu.device import DeviceSpec
from ..observability.metrics import get_registry
from ..observability.tracing import span
from ..reliability import faults
from .fitness_cache import FitnessCache
from .gga import GGA, SearchResult
from .grouping import FusionProblem, Grouping
from .params import GAParams

logger = logging.getLogger(__name__)

#: additive stride deriving island RNG streams from the base seed; island
#: 0 keeps the base seed so K=1 stays bit-identical to the classic GGA
ISLAND_SEED_STRIDE = 7919


def island_seed(base_seed: int, island: int) -> int:
    """The RNG seed of one island (island 0 == the base seed)."""
    return base_seed + ISLAND_SEED_STRIDE * island


def island_params(params: GAParams, island: int, islands: int) -> GAParams:
    """The per-island parameter set: split population, derived seed."""
    population = max(2, params.population // max(1, islands))
    return replace(
        params,
        population=population,
        seed=island_seed(params.seed, island),
        islands=1,
    )


class MigrationBus:
    """Ring-topology elite exchange between islands.

    Delivery is in-memory; when a store is attached every published
    payload is also written through to the ``island_migration``
    namespace (per-island key), which is what later runs hydrate from.
    """

    def __init__(
        self,
        problem: FusionProblem,
        device: DeviceSpec,
        params: GAParams,
        store=None,
    ) -> None:
        self.problem = problem
        self.device = device
        self.params = params
        self.store = store
        self.delivered = 0
        self.dropped = 0
        self.notes: List[Dict[str, object]] = []

    def _note(self, island: int, epoch: int, reason: str) -> None:
        self.notes.append(
            {
                "type": "migration_note",
                "island": island,
                "epoch": epoch,
                "event": "payload_dropped",
                "reason": reason,
            }
        )

    def publish(self, island: int, elites: Sequence[Grouping]) -> None:
        """Write one island's elites through to the store (best-effort)."""
        if self.store is None or not elites:
            return
        from ..store.stage_cache import save_island_elites

        try:
            save_island_elites(
                self.store, self.problem, self.device, self.params, island, elites
            )
        except Exception as exc:  # pragma: no cover - store is best-effort
            logger.warning("island %d: elite write-through failed: %s", island, exc)

    def deliver(
        self, target: GGA, source: int, epoch: int, elites: Sequence[Grouping]
    ) -> int:
        """Inject ``elites`` from ``source`` into ``target``'s population.

        The ``island_migration`` fault seam drops the payload here — the
        island continues solo, the drop is counted and noted.
        """
        if not elites:
            return 0
        if faults.poison_cache_value("island_migration"):
            self.dropped += len(elites)
            get_registry().inc("island_migrations_dropped_total", len(elites))
            self._note(
                target.island, epoch, "injected island_migration fault"
            )
            logger.warning(
                "island %d: migration payload from island %d dropped "
                "(fault injection); continuing solo",
                target.island,
                source,
            )
            return 0
        accepted = target.receive_migrants(elites)
        self.delivered += accepted
        get_registry().inc("island_migrations_total", accepted)
        return accepted

    def hydrate(self, island: int) -> List[Grouping]:
        """Elites a previous run left in the store for this island slot."""
        if self.store is None:
            return []
        from ..store.stage_cache import load_island_elites

        elites = load_island_elites(
            self.store, self.problem, self.device, self.params, island
        )
        if elites:
            get_registry().inc("island_hydrations_total", len(elites))
        return elites


class IslandGGA:
    """K concurrent GGA islands exchanging elites through a MigrationBus.

    Drives :class:`~repro.search.gga.GGA` through its steppable seam:
    every island advances ``migration_interval`` generations per epoch
    (concurrently, in threads — safe because fitness is pure and
    content-addressed), then elites migrate along the ring at the epoch
    barrier.  The merged :class:`SearchResult` carries every island's
    history (rows tagged with their island index) and the best feasible
    individual across islands.
    """

    def __init__(
        self,
        problem: FusionProblem,
        device: DeviceSpec,
        params: Optional[GAParams] = None,
        cache: Optional[FitnessCache] = None,
        seed_population: Optional[Sequence[Grouping]] = None,
        store=None,
    ) -> None:
        self.problem = problem
        self.device = device
        self.params = params or GAParams()
        self.count = max(1, self.params.islands)
        self.bus = MigrationBus(problem, device, self.params, store=store)
        self.islands: List[GGA] = []
        shared_seeds = list(seed_population or [])
        for index in range(self.count):
            seeds = shared_seeds + self.bus.hydrate(index)
            gga = GGA(
                problem,
                device,
                island_params(self.params, index, self.count),
                cache=cache,
                seed_population=seeds or None,
            )
            gga.island = index
            self.islands.append(gga)

    def _epoch(self, epoch: int) -> None:
        """Advance every live island by one epoch, then migrate."""
        interval = max(1, self.params.migration_interval)

        def advance(gga: GGA) -> None:
            for _ in range(interval):
                if gga.done:
                    return
                gga.step()

        live = [g for g in self.islands if not g.done]
        with span("islands:epoch", epoch=epoch, live=len(live)):
            if len(live) > 1:
                with ThreadPoolExecutor(max_workers=len(live)) as pool:
                    list(pool.map(advance, live))
            else:
                for gga in live:
                    advance(gga)
            if self.count > 1 and any(not g.done for g in self.islands):
                payloads = [
                    g.top_individuals(max(1, self.params.migration_size))
                    for g in self.islands
                ]
                for index, elites in enumerate(payloads):
                    self.bus.publish(index, elites)
                for index, gga in enumerate(self.islands):
                    source = (index - 1) % self.count
                    self.bus.deliver(gga, source, epoch, payloads[source])
            get_registry().inc("island_epochs_total")

    def run(self) -> SearchResult:
        start = time.perf_counter()
        for gga in self.islands:
            gga.initialize()
        epoch = 0
        while any(not g.done for g in self.islands):
            self._epoch(epoch)
            epoch += 1
        results = [g.finalize() for g in self.islands]
        return self._merge(results, time.perf_counter() - start)

    def _merge(self, results: List[SearchResult], wall_s: float) -> SearchResult:
        best_index = max(
            range(len(results)), key=lambda i: results[i].best_fitness
        )
        primary = results[best_index]
        history = sorted(
            (row for result in results for row in result.history),
            key=lambda row: (row.island, row.generation),
        )
        # the merged warm-start payload leads with the winning island's
        # population, topped up with the other islands' best individuals
        final_population = list(primary.final_population)
        seen = set(final_population)
        for index, result in enumerate(results):
            if index == best_index:
                continue
            for individual in result.final_population[: self.params.migration_size]:
                if individual not in seen:
                    final_population.append(individual)
                    seen.add(individual)
        correlations = [
            r.surrogate_rank_correlation
            for r in results
            if r.surrogate_rank_correlation == r.surrogate_rank_correlation
        ]
        generations_run = max(r.generations_run for r in results)
        total_fissions = sum(s.fissions for s in history)
        return SearchResult(
            best=primary.best,
            best_fitness=primary.best_fitness,
            projected_time_s=primary.projected_time_s,
            history=history,
            generations_run=generations_run,
            converged_at=primary.converged_at,
            avg_fissions_per_generation=(
                total_fissions / generations_run if generations_run else 0.0
            ),
            evaluations=sum(r.evaluations for r in results),
            cache_hits=sum(r.cache_hits for r in results),
            fitness_lookups=sum(r.fitness_lookups for r in results),
            final_population=final_population,
            islands=self.count,
            migrations_received=self.bus.delivered,
            migrations_dropped=self.bus.dropped,
            surrogate_skipped=sum(r.surrogate_skipped for r in results),
            surrogate_rank_correlation=(
                sum(correlations) / len(correlations)
                if correlations
                else float("nan")
            ),
            wall_time_s=wall_s,
            migration_notes=list(self.bus.notes),
        )

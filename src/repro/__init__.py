"""repro: reproduction of "Automated GPU Kernel Transformations in
Large-Scale Production Stencil Applications" (Wahib & Maruyama, HPDC 2015).

Top-level convenience re-exports; see the subpackages for the full API:

- :mod:`repro.cudalite`  — the CUDA-C dialect (parser / AST / unparser)
- :mod:`repro.gpu`       — device models, occupancy, interpreter, profiler
- :mod:`repro.analysis`  — static analysis and metadata
- :mod:`repro.graphs`    — DDG / OEG
- :mod:`repro.search`    — the grouped genetic algorithm (lazy fission)
- :mod:`repro.transform` — fission / fusion code generation, tuning
- :mod:`repro.pipeline`  — the end-to-end framework and CLI
- :mod:`repro.apps`      — the six application generators
"""

__version__ = "1.0.0"

from .cudalite import parse_program, unparse
from .gpu.device import K20X, K40, query_device
from .pipeline import Framework, PipelineConfig, transform_program

__all__ = [
    "parse_program",
    "unparse",
    "K20X",
    "K40",
    "query_device",
    "Framework",
    "PipelineConfig",
    "transform_program",
    "__version__",
]

"""repro: reproduction of "Automated GPU Kernel Transformations in
Large-Scale Production Stencil Applications" (Wahib & Maruyama, HPDC 2015).

Top-level convenience re-exports; see the subpackages for the full API:

- :mod:`repro.cudalite`  — the CUDA-C dialect (parser / AST / unparser)
- :mod:`repro.gpu`       — device models, occupancy, interpreter, profiler
- :mod:`repro.analysis`  — static analysis and metadata
- :mod:`repro.graphs`    — DDG / OEG
- :mod:`repro.search`    — the grouped genetic algorithm (lazy fission)
- :mod:`repro.transform` — fission / fusion code generation, tuning
- :mod:`repro.pipeline`  — the end-to-end framework and CLI
- :mod:`repro.apps`      — the six application generators
- :mod:`repro.store`     — the persistent cross-run artifact cache
- :mod:`repro.api`       — the stable entry point (transform / TransformConfig)
"""

__version__ = "1.6.0"

from .api import (
    EnvKnobDeprecationWarning,
    JobHandle,
    TransformConfig,
    TransformResult,
    result,
    status,
    submit,
    transform,
)
from .cudalite import parse_program, unparse
from .errors import (
    ConfigError,
    PipelineError,
    ReproError,
    ServiceError,
    StoreError,
)
from .gpu.device import K20X, K40, query_device
from .pipeline import Framework, PipelineConfig, transform_program
from .store import ArtifactStore, default_store_root, open_store

__all__ = [
    # stable facade (repro.api)
    "transform",
    "TransformConfig",
    "TransformResult",
    "EnvKnobDeprecationWarning",
    # job-oriented core (repro.api)
    "JobHandle",
    "submit",
    "status",
    "result",
    # errors
    "ReproError",
    "ConfigError",
    "PipelineError",
    "ServiceError",
    "StoreError",
    # persistent store
    "ArtifactStore",
    "open_store",
    "default_store_root",
    # language + devices
    "parse_program",
    "unparse",
    "K20X",
    "K40",
    "query_device",
    # pipeline internals (pre-facade API, kept stable)
    "Framework",
    "PipelineConfig",
    "transform_program",
    "__version__",
]

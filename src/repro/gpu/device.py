"""Device models for the GPU simulator substrate.

The paper evaluates on Nvidia Kepler K20X and K40 GPUs.  Since no GPU is
available here, a :class:`DeviceSpec` captures the published architectural
parameters that the paper's methods actually consume: shared-memory capacity
(the fusion search constraint), occupancy limits (block-size tuning) and
peak bandwidth / FLOP rates (the performance projection model).

``query_device`` plays the role of the CUDA SDK ``deviceQuery`` sample used
by the metadata-gathering stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a (simulated) GPU.

    All capacities are per-SM unless noted.  The defaults of the derived
    quantities follow the CUDA occupancy calculator's tables for compute
    capability 3.5 (Kepler).
    """

    name: str
    compute_capability: str
    sm_count: int
    #: Peak off-chip memory bandwidth in GB/s.
    peak_bandwidth_gbs: float
    #: Peak double-precision throughput in GFLOP/s.
    peak_gflops_dp: float
    #: Peak single-precision throughput in GFLOP/s.
    peak_gflops_sp: float
    #: Shared memory available per SM (bytes).
    shared_mem_per_sm: int
    #: Maximum shared memory a single thread block may allocate (bytes).
    shared_mem_per_block: int
    #: 32-bit registers per SM.
    regs_per_sm: int
    #: Maximum registers addressable per thread.
    max_regs_per_thread: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    warp_size: int = 32
    #: Shared-memory allocation granularity (bytes).
    smem_alloc_granularity: int = 256
    #: Register allocation granularity (registers, per warp).
    reg_alloc_granularity: int = 256
    #: Kernel launch overhead (seconds) charged by the timing model.
    launch_overhead_s: float = 5.0e-6
    #: Occupancy at which the memory system saturates; below this the
    #: effective bandwidth scales roughly linearly with occupancy.
    saturation_occupancy: float = 0.55

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    def effective_bandwidth(self, occupancy: float) -> float:
        """Effective global-memory bandwidth (GB/s) at a given occupancy.

        Kepler needs roughly half of its maximum resident warps in flight to
        saturate the memory system; beyond the saturation point more warps do
        not add bandwidth.
        """
        occupancy = min(max(occupancy, 0.0), 1.0)
        scale = min(1.0, occupancy / self.saturation_occupancy)
        return self.peak_bandwidth_gbs * scale


#: Tesla K20X — 14 SMX, GDDR5 at 250 GB/s, 1.31 DP TFLOP/s.
K20X = DeviceSpec(
    name="K20X",
    compute_capability="3.5",
    sm_count=14,
    peak_bandwidth_gbs=250.0,
    peak_gflops_dp=1310.0,
    peak_gflops_sp=3935.0,
    shared_mem_per_sm=48 * 1024,
    shared_mem_per_block=48 * 1024,
    regs_per_sm=65536,
    max_regs_per_thread=255,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
)

#: Tesla K40 — 15 SMX, GDDR5 at 288 GB/s, 1.43 DP TFLOP/s.
K40 = DeviceSpec(
    name="K40",
    compute_capability="3.5",
    sm_count=15,
    peak_bandwidth_gbs=288.0,
    peak_gflops_dp=1430.0,
    peak_gflops_sp=4290.0,
    shared_mem_per_sm=48 * 1024,
    shared_mem_per_block=48 * 1024,
    regs_per_sm=65536,
    max_regs_per_thread=255,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
)

#: A small generic device used in unit tests (tight shared memory so fusion
#: constraints bind at test problem sizes).
TESTING = DeviceSpec(
    name="TESTING",
    compute_capability="3.5",
    sm_count=2,
    peak_bandwidth_gbs=100.0,
    peak_gflops_dp=500.0,
    peak_gflops_sp=1500.0,
    shared_mem_per_sm=16 * 1024,
    shared_mem_per_block=16 * 1024,
    regs_per_sm=32768,
    max_regs_per_thread=255,
    max_threads_per_sm=1024,
    max_threads_per_block=512,
    max_blocks_per_sm=8,
)

_CATALOG: Dict[str, DeviceSpec] = {d.name: d for d in (K20X, K40, TESTING)}


def query_device(name: str) -> DeviceSpec:
    """Return the :class:`DeviceSpec` for ``name`` (the deviceQuery step).

    Raises
    ------
    KeyError
        If the device is not in the catalog.
    """
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(_CATALOG)}"
        ) from None


def register_device(spec: DeviceSpec) -> None:
    """Add a custom device to the catalog (programmer extension point)."""
    _CATALOG[spec.name] = spec


def available_devices() -> tuple:
    """Names of devices in the catalog."""
    return tuple(sorted(_CATALOG))

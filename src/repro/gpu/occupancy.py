"""CUDA occupancy calculator model (§4.2 of the paper).

Occupancy is the ratio of sustained active warps to the maximum possible
active warps per SM.  Active blocks per SM are limited by four resources:

* warps            — ``max_warps_per_sm // warps_per_block``
* shared memory    — ``shared_mem_per_sm // smem_per_block`` (granular)
* registers        — register file split across blocks (granular, per warp)
* hardware blocks  — ``max_blocks_per_sm``

The paper tunes the thread-block size of newly generated kernels by
enumerating feasible block sizes and picking the one with the highest
calculated occupancy; :func:`tune_block_size` implements exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .device import DeviceSpec


def _round_up(value: int, granularity: int) -> int:
    if granularity <= 0:
        return value
    return ((value + granularity - 1) // granularity) * granularity


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of one occupancy calculation."""

    block_size: int
    warps_per_block: int
    active_blocks_per_sm: int
    active_warps_per_sm: int
    occupancy: float
    #: Which resource bound the result: 'warps', 'smem', 'regs' or 'blocks'.
    limiter: str


def calculate_occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    smem_per_block: int = 0,
    regs_per_thread: int = 32,
) -> OccupancyResult:
    """Compute achievable occupancy for a kernel configuration.

    Mirrors the CUDA occupancy calculator's arithmetic: each limit is
    computed independently and the minimum wins.

    Raises
    ------
    ValueError
        If the configuration can never run (block too large, too much shared
        memory per block, too many registers per thread).
    """
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if threads_per_block > device.max_threads_per_block:
        raise ValueError(
            f"block of {threads_per_block} exceeds device limit "
            f"{device.max_threads_per_block}"
        )
    if smem_per_block > device.shared_mem_per_block:
        raise ValueError(
            f"{smem_per_block} B shared memory exceeds per-block limit "
            f"{device.shared_mem_per_block} B"
        )
    if regs_per_thread > device.max_regs_per_thread:
        raise ValueError(
            f"{regs_per_thread} registers/thread exceeds device limit "
            f"{device.max_regs_per_thread}"
        )

    warps_per_block = math.ceil(threads_per_block / device.warp_size)
    unlimited = 10 ** 9

    limits = {"warps": device.max_warps_per_sm // warps_per_block}

    smem_alloc = _round_up(smem_per_block, device.smem_alloc_granularity)
    limits["smem"] = (
        device.shared_mem_per_sm // smem_alloc if smem_alloc > 0 else unlimited
    )

    regs_per_warp = _round_up(
        regs_per_thread * device.warp_size, device.reg_alloc_granularity
    )
    regs_per_block = regs_per_warp * warps_per_block
    limits["regs"] = (
        device.regs_per_sm // regs_per_block if regs_per_block > 0 else unlimited
    )

    limits["blocks"] = device.max_blocks_per_sm

    limiter = min(limits, key=lambda k: limits[k])
    active_blocks = limits[limiter]
    if active_blocks < 1:
        raise ValueError(
            f"configuration cannot launch: {limiter} limit admits zero "
            f"blocks ({threads_per_block} threads, {smem_per_block} B smem, "
            f"{regs_per_thread} regs/thread)"
        )
    active_warps = active_blocks * warps_per_block
    occupancy = active_warps / device.max_warps_per_sm
    return OccupancyResult(
        block_size=threads_per_block,
        warps_per_block=warps_per_block,
        active_blocks_per_sm=active_blocks,
        active_warps_per_sm=active_warps,
        occupancy=min(occupancy, 1.0),
        limiter=limiter,
    )


def enumerate_block_sizes(
    device: DeviceSpec, minimum: int = 32, step: int = 32
) -> Tuple[int, ...]:
    """All thread-block sizes the tuner considers (multiples of a warp)."""
    return tuple(range(minimum, device.max_threads_per_block + 1, step))


@dataclass(frozen=True)
class BlockShape:
    """A 3-D thread-block shape ``(x, y, z)``."""

    x: int
    y: int
    z: int = 1

    @property
    def size(self) -> int:
        return self.x * self.y * self.z

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.x, self.y, self.z)


def candidate_shapes(
    device: DeviceSpec, dims: int = 2
) -> Tuple[BlockShape, ...]:
    """Enumerate rectangular block shapes for 1/2/3-D stencil kernels.

    The x extent is kept a multiple of the warp size where possible so the
    contiguous (unit-stride) dimension maps onto whole warps — the common
    horizontal mapping for GPU stencils.
    """
    shapes: List[BlockShape] = []
    if dims == 1:
        for x in enumerate_block_sizes(device):
            shapes.append(BlockShape(x, 1, 1))
        return tuple(shapes)
    xs = (16, 32, 64, 128, 256)
    ys = (1, 2, 4, 8, 16, 32)
    for x in xs:
        for y in ys:
            size = x * y
            if size < device.warp_size or size > device.max_threads_per_block:
                continue
            shapes.append(BlockShape(x, y, 1))
    return tuple(shapes)


def tune_block_size(
    device: DeviceSpec,
    smem_per_thread: float,
    regs_per_thread: int,
    dims: int = 2,
    current: Optional[BlockShape] = None,
) -> Tuple[BlockShape, OccupancyResult]:
    """Pick the block shape with the highest calculated occupancy (§4.2).

    ``smem_per_thread`` is the shared-memory footprint each thread
    contributes (bytes); the per-block footprint scales with the block size,
    which is how fused kernels staging more arrays get steered towards
    smaller blocks.

    Returns the winning shape and its occupancy.  Ties prefer (a) the current
    shape if given (avoid churn), then (b) larger blocks (fewer blocks to
    schedule).
    """
    best: Optional[Tuple[BlockShape, OccupancyResult]] = None
    for shape in candidate_shapes(device, dims):
        smem = int(math.ceil(smem_per_thread * shape.size))
        if smem > device.shared_mem_per_block:
            continue
        try:
            result = calculate_occupancy(device, shape.size, smem, regs_per_thread)
        except ValueError:
            continue
        if best is None:
            best = (shape, result)
            continue
        incumbent = best[1]
        if result.occupancy > incumbent.occupancy + 1e-12:
            best = (shape, result)
        elif abs(result.occupancy - incumbent.occupancy) <= 1e-12:
            if current is not None and shape == current and best[0] != current:
                best = (shape, result)
            elif shape.size > best[0].size and (current is None or best[0] != current):
                best = (shape, result)
    if best is None:
        raise ValueError("no feasible block size for this kernel on this device")
    return best

"""Analytic performance model for (simulated) stencil kernels.

This is the reproduction's substitute for running on a K20X/K40: a
roofline-style projection

``t = max(bytes / BW_eff(occupancy), flops / peak) + launch_overhead``

with three effects the paper's evaluation hinges on:

* **Read redundancy.**  Untiled stencil reads pay a cache-miss redundancy
  that grows with the neighborhood radius; shared-memory tiles instead pay
  the halo-load redundancy ``(bx+2r)(by+2r)/(bx·by)``.  Fusion wins by
  replacing N kernels' independent reads of a shared array with one staged
  read.
* **Occupancy.**  Effective bandwidth scales with occupancy up to a Kepler
  saturation point; fused kernels use more shared memory and registers,
  which lowers occupancy — the constraint the GGA search and the
  block-size tuner (§4.2) manage.
* **Code-generation quality.**  The paper found automated fusion loses to
  manual fusion through (a) un-shared deep loop nests (shared data re-read
  per loop) and (b) two-sided divergence guards.  Generated kernels carry
  :class:`CodegenTraits` describing these effects so the model charges them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set, Tuple

from ..analysis.volume import LaunchVolume
from .device import DeviceSpec
from .occupancy import OccupancyResult, calculate_occupancy

#: Per-radius cache redundancy for untiled stencil reads.  Radius-0 streams
#: perfectly; each extra halo ring costs ~25% extra traffic on Kepler-class
#: caches.
CACHE_REDUNDANCY_PER_RADIUS = 0.25


def cache_redundancy(radius: int) -> float:
    """Traffic multiplier for an untiled stencil read of the given radius."""
    return 1.0 + CACHE_REDUNDANCY_PER_RADIUS * max(0, radius)


def tile_halo_factor(block: Tuple[int, int, int], radius: int) -> float:
    """Traffic multiplier for a shared-memory tile with halo ``radius``.

    Tiles follow the common horizontal (x, y) mapping; the z dimension is
    iterated sequentially and does not need a halo in shared memory.
    """
    bx, by = max(1, block[0]), max(1, block[1])
    if radius <= 0:
        return 1.0
    return ((bx + 2 * radius) * (by + 2 * radius)) / float(bx * by)


def estimate_registers(n_arrays: int, flops_per_point: float) -> int:
    """Heuristic register usage of a stencil kernel.

    Base thread state plus ~3 registers per live array pointer/index and a
    contribution from expression complexity.  Fused kernels touch more
    arrays and hold more temporaries, which is what pushes occupancy down.
    """
    regs = 14 + 2 * n_arrays + int(flops_per_point / 6.0)
    return max(16, min(112, regs))


@dataclass
class CodegenTraits:
    """How a kernel's generated code interacts with the memory hierarchy.

    Original (untransformed) kernels get default traits: nothing staged,
    every array read once per point with cache redundancy, no divergence
    penalty.
    """

    #: Arrays staged into shared-memory tiles (pay halo factor, not cache).
    staged: Set[str] = field(default_factory=set)
    #: Arrays whose global reads are fully served from on-chip data produced
    #: earlier in the same kernel (complex fusion's intermediate values).
    on_chip: Set[str] = field(default_factory=set)
    #: Per-array read multiplicity: >1 when separate (un-shared) loop nests
    #: each re-read the array (the automated deep-loop inefficiency).
    rereads: Dict[str, int] = field(default_factory=dict)
    #: Per-array stencil radius (for halo / cache factors).
    radius: Dict[str, int] = field(default_factory=dict)
    #: Warp-divergence multiplier on execution time (>= 1.0).
    divergence_factor: float = 1.0
    #: Shared memory per block in bytes.
    smem_per_block: int = 0
    #: Register estimate per thread.
    regs_per_thread: int = 32
    #: Extra sites computed per block for temporal blocking (halo compute).
    halo_compute_factor: float = 1.0

    def read_factor(self, array: str, block: Tuple[int, int, int]) -> float:
        """Effective traffic multiplier for reading ``array`` once per point."""
        r = self.radius.get(array, 0)
        if array in self.on_chip:
            return 0.0
        rereads = max(1, self.rereads.get(array, 1))
        if array in self.staged:
            # a staged array is loaded once regardless of how many fused
            # constituents consume it; rereads only apply when the codegen
            # failed to share loops (the reread count already reflects that)
            return tile_halo_factor(block, r) * rereads
        return cache_redundancy(r) * rereads


@dataclass(frozen=True)
class KernelProjection:
    """Projected execution profile of one kernel launch."""

    kernel_name: str
    bytes_read: float
    bytes_written: float
    flops: float
    occupancy: float
    time_memory_s: float
    time_compute_s: float
    time_s: float
    limiter: str  # 'memory' or 'compute'

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def gflops(self) -> float:
        return self.flops / self.time_s / 1e9 if self.time_s > 0 else 0.0

    @property
    def effective_bandwidth_gbs(self) -> float:
        return self.bytes_total / self.time_s / 1e9 if self.time_s > 0 else 0.0


def project_kernel(
    device: DeviceSpec,
    volume: LaunchVolume,
    block: Tuple[int, int, int],
    traits: Optional[CodegenTraits] = None,
    precision: str = "double",
) -> KernelProjection:
    """Project execution time of one launch on ``device``."""
    traits = traits if traits is not None else CodegenTraits()
    threads_per_block = max(1, block[0] * block[1] * block[2])
    occ = calculate_occupancy(
        device,
        min(threads_per_block, device.max_threads_per_block),
        min(traits.smem_per_block, device.shared_mem_per_block),
        min(traits.regs_per_thread, device.max_regs_per_thread),
    ).occupancy

    bytes_read = 0.0
    for array in volume.arrays_read:
        points = volume.points_per_array.get(array, volume.active_threads)
        bytes_read += points * volume.itemsize * traits.read_factor(array, block)
    bytes_written = volume.bytes_written()
    total_bytes = (bytes_read + bytes_written) * traits.halo_compute_factor

    peak = device.peak_gflops_dp if precision == "double" else device.peak_gflops_sp
    bw = device.effective_bandwidth(occ)
    time_mem = total_bytes / (bw * 1e9) if bw > 0 else float("inf")
    flops = volume.flops * traits.halo_compute_factor
    time_cmp = flops / (peak * 1e9) if peak > 0 else float("inf")
    busy = max(time_mem, time_cmp) * traits.divergence_factor
    time = busy + device.launch_overhead_s
    return KernelProjection(
        kernel_name=volume.kernel_name,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        flops=flops,
        occupancy=occ,
        time_memory_s=time_mem,
        time_compute_s=time_cmp,
        time_s=time,
        limiter="memory" if time_mem >= time_cmp else "compute",
    )


@dataclass(frozen=True)
class ProgramProjection:
    """Aggregate projection over a sequence of kernel launches."""

    kernels: Tuple[KernelProjection, ...]

    @property
    def time_s(self) -> float:
        return sum(k.time_s for k in self.kernels)

    @property
    def flops(self) -> float:
        return sum(k.flops for k in self.kernels)

    @property
    def bytes_total(self) -> float:
        return sum(k.bytes_total for k in self.kernels)

    @property
    def gflops(self) -> float:
        t = self.time_s
        return self.flops / t / 1e9 if t > 0 else 0.0

    def speedup_over(self, baseline: "ProgramProjection") -> float:
        """Baseline time divided by this projection's time."""
        return baseline.time_s / self.time_s if self.time_s > 0 else float("inf")

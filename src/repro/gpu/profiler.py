"""The profiler: nvprof's stand-in for metadata gathering (§5.1).

The paper instruments the CUDA program (event APIs injected via ROSE), runs
it once under ``nvprof`` and extracts per-kernel performance metadata.  Here
the instrumented run is a *dry run* of the host code on the simulator (which
records every launch with its actual argument bindings) combined with the
analytic performance model; a single call produces the same metadata file
contents the paper's shell script would scrape from the profiler output.
"""

from __future__ import annotations

import logging
from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..analysis.accesses import KernelAccesses, collect_accesses
from ..analysis.deps import is_fissionable
from ..analysis.metadata import (
    KernelOperations,
    KernelPerformance,
    ProgramMetadata,
)
from ..analysis.stencil import analyze_stencil
from ..analysis.volume import bind_scalars, estimate_volume
from ..cudalite import ast_nodes as ast
from ..errors import AnalysisError
from ..observability.metrics import get_registry
from .device import DeviceSpec
from .interpreter import LaunchRecord, trace_launches
from .perfmodel import CodegenTraits, estimate_registers, project_kernel

logger = logging.getLogger(__name__)


def declared_shared_bytes(kernel: ast.KernelDef) -> int:
    """Total bytes of ``__shared__`` arrays declared by the kernel.

    Non-constant shared dims are rejected by semantic checking, but a
    kernel that slips through would otherwise have its shared footprint
    silently undercounted (the dim treated as one element) — which skews
    occupancy projections and the paper's Eq. 1 shared-memory penalty.
    We still use the conservative one-element fallback, but loudly:
    a warning is logged and ``metadata_warnings_total`` is incremented so
    the condition surfaces in the run's metrics.
    """
    total = 0
    for node in kernel.body.walk():
        if isinstance(node, ast.VarDecl) and node.is_shared:
            elems = 1
            for dim in node.array_dims:
                if isinstance(dim, ast.IntLit):
                    elems *= dim.value
                else:
                    logger.warning(
                        "kernel %s: shared array %s has non-constant dim; "
                        "counting it as 1 element (footprint undercounted)",
                        kernel.name,
                        node.name,
                    )
                    get_registry().inc(
                        "metadata_warnings_total",
                        kind="nonconstant_shared_dim",
                        kernel=kernel.name,
                    )
            total += elems * node.type.itemsize
    return total


def default_traits(
    kernel: ast.KernelDef, accesses: KernelAccesses
) -> CodegenTraits:
    """Codegen traits of an *original* (untransformed) kernel.

    Kernels that already stage tiles in shared memory (the "almost fused"
    kernels of AWP-ODC / B-CALM) get their stenciled reads marked as staged.
    """
    axis_vars = set(accesses.index_vars) | {l.var for l in accesses.loops}
    radius = {
        name: info.halo_radius(tuple(axis_vars))
        for name, info in accesses.arrays.items()
    }
    smem = declared_shared_bytes(kernel)
    staged: Set[str] = set()
    if smem > 0:
        staged = {name for name, r in radius.items() if r > 0 and accesses.arrays[name].is_read}
    n_arrays = len(accesses.arrays)
    flops_pp = accesses.total_flops_per_point
    return CodegenTraits(
        staged=staged,
        radius=radius,
        smem_per_block=smem,
        regs_per_thread=estimate_registers(n_arrays, flops_pp),
    )


def _rename(mapping: Mapping[str, str], names) -> List[str]:
    return sorted({mapping.get(n, n) for n in names})


def gather_metadata(
    program: ast.Program,
    device: DeviceSpec,
    traits_overrides: Optional[Dict[str, CodegenTraits]] = None,
) -> ProgramMetadata:
    """Produce the full metadata set for ``program`` on ``device``.

    ``traits_overrides`` lets the pipeline profile *generated* programs whose
    kernels carry non-default codegen traits.
    """
    trace = trace_launches(program)
    meta = ProgramMetadata(device=device)
    meta.array_shapes = {
        name: tuple(arr.shape) for name, arr in trace.arrays.items()
    }

    first_launch: Dict[str, LaunchRecord] = {}
    invocations: Dict[str, int] = defaultdict(int)
    for record in trace.launches:
        invocations[record.kernel] += 1
        first_launch.setdefault(record.kernel, record)
        kernel = program.kernel(record.kernel)
        pointer_names = [p.name for p in kernel.pointer_params()]
        if len(pointer_names) != len(record.array_args):
            raise AnalysisError(
                f"kernel {record.kernel!r}: {len(pointer_names)} pointer "
                f"params but {len(record.array_args)} array args"
            )
        meta.launch_order.append(
            (
                record.kernel,
                tuple(record.array_args),
                record.grid.as_tuple(),
                record.block.as_tuple(),
                tuple(float(s) for s in record.scalar_args),
            )
        )

    touched_by: Dict[str, Set[str]] = defaultdict(set)

    for name, record in first_launch.items():
        kernel = program.kernel(name)
        accesses = collect_accesses(kernel)
        stencil = analyze_stencil(kernel, accesses)
        scalar_env = bind_scalars(kernel, record.scalar_args)
        grid = record.grid.as_tuple()
        block = record.block.as_tuple()
        volume = estimate_volume(kernel, grid, block, scalar_env, accesses)
        traits = (
            traits_overrides.get(name)
            if traits_overrides and name in traits_overrides
            else default_traits(kernel, accesses)
        )
        projection = project_kernel(device, volume, block, traits)

        meta.performance[name] = KernelPerformance(
            kernel=name,
            invocations=invocations[name],
            runtime_s=projection.time_s,
            gflops=projection.gflops,
            effective_bandwidth_gbs=projection.effective_bandwidth_gbs,
            shared_mem_per_block=traits.smem_per_block,
            regs_per_thread=traits.regs_per_thread,
            active_threads=volume.active_threads,
            active_blocks_per_sm=max(
                1, device.max_threads_per_sm // max(1, block[0] * block[1] * block[2])
            ),
            occupancy=projection.occupancy,
            flops=projection.flops,
            bytes_moved=projection.bytes_total,
            grid=grid,
            block=block,
        )

        # map formal pointer params to actual host arrays
        pointer_names = [p.name for p in kernel.pointer_params()]
        formal_to_actual = dict(zip(pointer_names, record.array_args))
        arrays_read = _rename(formal_to_actual, volume.arrays_read)
        arrays_written = _rename(formal_to_actual, volume.arrays_written)
        for arr in arrays_read + arrays_written:
            touched_by[arr].add(name)
        launched = max(1, volume.launched_threads)
        points = volume.active_threads
        loop_points = max(volume.points_per_array.values(), default=points)
        meta.operations[name] = KernelOperations(
            kernel=name,
            stencil_shapes={
                formal_to_actual.get(s.array, s.array): s.shape.label
                for s in stencil.stencils
            },
            radius={
                formal_to_actual.get(a, a): r for a, r in traits.radius.items()
            },
            arrays_read=arrays_read,
            arrays_written=arrays_written,
            shared_arrays=[],  # filled below
            flops_per_array={
                formal_to_actual.get(a, a): float(f)
                for a, f in accesses.per_array_flops().items()
            },
            loop_sizes={
                var: (size if size is not None else -1)
                for var, size in stencil.loop_sizes.items()
            },
            loop_depth=stencil.loop_depth,
            unit_stride=all(s.unit_stride for s in stencil.stencils),
            irregular=stencil.irregular,
            uses_shared_memory=accesses.uses_shared,
            active_fraction=volume.active_threads / launched,
            fissionable=is_fissionable(kernel, accesses),
            flops_per_point=float(accesses.total_flops_per_point),
        )

    for ops in meta.operations.values():
        ops.shared_arrays = sorted(
            arr
            for arr in set(ops.arrays_read) | set(ops.arrays_written)
            if len(touched_by[arr]) > 1
        )

    return meta

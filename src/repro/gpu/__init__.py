"""GPU simulator substrate: device models, occupancy, interpreter, timing."""

from .device import (
    K20X,
    K40,
    TESTING,
    DeviceSpec,
    available_devices,
    query_device,
    register_device,
)
from .interpreter import (
    Dim3,
    HostInterpreter,
    LaunchRecord,
    RunResult,
    block_exec_from_env,
    outputs_allclose,
    run_program,
    trace_launches,
)
from .occupancy import (
    BlockShape,
    OccupancyResult,
    calculate_occupancy,
    candidate_shapes,
    tune_block_size,
)
from .perfmodel import (
    CodegenTraits,
    KernelProjection,
    ProgramProjection,
    cache_redundancy,
    estimate_registers,
    project_kernel,
    tile_halo_factor,
)
from .profiler import declared_shared_bytes, default_traits, gather_metadata

__all__ = [
    "DeviceSpec", "K20X", "K40", "TESTING",
    "query_device", "register_device", "available_devices",
    "Dim3", "HostInterpreter", "LaunchRecord", "RunResult",
    "run_program", "trace_launches", "outputs_allclose",
    "block_exec_from_env",
    "OccupancyResult", "BlockShape", "calculate_occupancy",
    "candidate_shapes", "tune_block_size",
    "CodegenTraits", "KernelProjection", "ProgramProjection",
    "project_kernel", "cache_redundancy", "tile_halo_factor",
    "estimate_registers",
    "gather_metadata", "default_traits", "declared_shared_bytes",
]

"""Execution of CudaLite programs on the simulator substrate.

This module plays the role of the GPU in the reproduction: it executes
CudaLite programs *bit-faithfully* so that — exactly as in the paper's
methodology — the output of every transformed program can be verified
against the output of the original program.

Two execution strategies are used:

``vectorized`` (default for kernels without ``__shared__``)
    Thread-varying values are represented as numpy arrays broadcast over the
    full thread lattice; each statement executes for all threads before the
    next starts.  This matches CUDA semantics for data-parallel stencil
    kernels (no inter-thread communication).

``per-block`` (kernels that declare ``__shared__`` tiles)
    Blocks execute with a real per-block shared-memory array.  This
    faithfully reproduces the *scope* of shared memory: a tile only sees
    the values its own block staged, so generated code with insufficient
    halo layers produces wrong answers here just as it would on hardware.
    Two interchangeable implementations exist:

    ``loop``
        A Python loop over the launch grid; one block at a time.

    ``batched`` (default where applicable)
        All blocks execute together, each statement evaluated across the
        whole launch as numpy arrays with a leading *block axis*.  Shared
        arrays gain the same leading axis, so per-block scoping is
        preserved bit-exactly while the Python-level interpretation cost
        is paid once per statement instead of once per block.  Kernels
        whose loop bounds, while conditions or shared extents are not
        block-invariant fall back to ``loop`` automatically, as does race
        detection.  Select explicitly via the ``block_exec`` argument of
        :func:`run_program` / :class:`HostInterpreter` or the
        ``REPRO_BLOCK_EXEC`` environment variable (``auto`` | ``loop`` |
        ``batched`` | ``compiled``).

A third strategy, ``compiled``, lowers the kernel body once into generated
numpy Python source (see :mod:`repro.gpu.compiler`) and runs the compiled
closure over the same vectorized/batched lattices.  Kernels the lowerer
cannot handle fall back per-kernel to the interpretation modes above;
outputs and hardware-ish counters are bit-identical by construction
because the generated code funnels every array access through the same
:meth:`_KernelExec.load_values` / :meth:`_KernelExec.store_values` paths
the tree-walker uses.

Statements act as implicit barriers in both modes (a vectorized statement
completes for every thread before the next begins).  ``__syncthreads()``
placement is additionally validated statically by the transformation tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..cudalite import ast_nodes as ast
from ..errors import InterpreterError, OutOfBoundsError
from ..observability.hwcounters import KernelCounters
from ..observability.tracing import span

Scalar = Union[int, float, bool]
Value = Union[Scalar, np.ndarray]

ENV_BLOCK_EXEC = "REPRO_BLOCK_EXEC"
_BLOCK_EXEC_MODES = ("auto", "loop", "batched", "compiled")


def block_exec_from_env(default: str = "auto") -> str:
    """Resolve the shared-memory execution strategy from the environment."""
    raw = os.environ.get(ENV_BLOCK_EXEC, default).strip().lower()
    return raw if raw in _BLOCK_EXEC_MODES else default


@dataclass(frozen=True)
class Dim3:
    """A launch-configuration triple."""

    x: int = 1
    y: int = 1
    z: int = 1

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.x, self.y, self.z)

    @property
    def count(self) -> int:
        return self.x * self.y * self.z


@dataclass
class DeviceArray:
    """A device-resident array: numpy storage plus its logical shape."""

    name: str
    data: np.ndarray

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape


@dataclass
class LaunchRecord:
    """Trace entry for one kernel launch (consumed by the profiler)."""

    kernel: str
    grid: Dim3
    block: Dim3
    array_args: Tuple[str, ...]
    scalar_args: Tuple[Scalar, ...] = ()
    #: hardware-ish event counters, populated when the interpreter runs
    #: with ``collect_counters=True`` (None otherwise)
    counters: Optional[KernelCounters] = None


@dataclass
class RunResult:
    """Outcome of executing a program's host code."""

    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    launches: List[LaunchRecord] = field(default_factory=list)

    def array(self, name: str) -> np.ndarray:
        return self.arrays[name]


_MATH_FUNCS = {
    "sqrt": np.sqrt,
    "fabs": np.abs,
    "abs": np.abs,
    "exp": np.exp,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "floor": np.floor,
    "ceil": np.ceil,
}

_MATH_FUNCS2 = {
    "pow": np.power,
    "min": np.minimum,
    "max": np.maximum,
    "fmin": np.minimum,
    "fmax": np.maximum,
}


def _is_int(value: Value) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, np.integer)):
        return True
    return isinstance(value, np.ndarray) and np.issubdtype(value.dtype, np.integer)


def _c_div(lhs: Value, rhs: Value) -> Value:
    """C division: integer operands truncate toward zero, else float divide."""
    if _is_int(lhs) and _is_int(rhs):
        quotient = np.trunc(np.asarray(lhs, dtype=np.float64) / np.asarray(rhs))
        result = quotient.astype(np.int64)
        if np.ndim(result) == 0 and not isinstance(lhs, np.ndarray) and not isinstance(rhs, np.ndarray):
            return int(result)
        return result
    return lhs / rhs


def _c_mod(lhs: Value, rhs: Value) -> Value:
    if _is_int(lhs) and _is_int(rhs):
        return lhs - _c_div(lhs, rhs) * rhs
    return np.fmod(lhs, rhs)


def _as_int(value: Value) -> Value:
    """C-style truncating conversion of a declared ``int`` initializer."""
    if isinstance(value, np.ndarray):
        if not np.issubdtype(value.dtype, np.integer):
            return np.trunc(value).astype(np.int64)
        return value
    return int(value)


def _as_float(value: Value) -> Value:
    """Widening conversion of a declared ``double``/``float`` initializer."""
    if isinstance(value, np.ndarray):
        if not np.issubdtype(value.dtype, np.floating):
            return value.astype(np.float64)
        return value
    return float(value)


_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _c_div,
    "%": _c_mod,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "&&": lambda a, b: np.logical_and(a, b),
    "||": lambda a, b: np.logical_or(a, b),
}


class _KernelExec:
    """Executes one kernel launch."""

    def __init__(
        self,
        kernel: ast.KernelDef,
        grid: Dim3,
        block: Dim3,
        args: List[Value],
        arrays: Dict[str, np.ndarray],
        detect_races: bool = False,
        block_order: str = "forward",
        block_exec: str = "auto",
        counters: Optional[KernelCounters] = None,
    ) -> None:
        self.kernel = kernel
        self.grid = grid
        self.block = block
        self.arrays = arrays
        self.detect_races = detect_races
        self.block_order = block_order
        self.block_exec = block_exec
        #: hardware-ish event counters; None disables counting entirely
        #: (the hot paths then pay one `is not None` check per event site)
        self.counters = counters
        #: thread blocks covered by one statement execution in the current
        #: mode (grid for vectorized, batch size for batched, 1 for loop)
        self._blocks_covered = 1
        self.env: Dict[str, Value] = {}
        self.shared: Dict[str, np.ndarray] = {}
        #: in batched mode, the positional block index (nb, 1, 1, 1) used to
        #: address the leading axis of batched shared arrays; None otherwise
        self._block_axis: Optional[np.ndarray] = None
        params = kernel.params
        if len(args) != len(params):
            raise InterpreterError(
                f"kernel {kernel.name!r}: expected {len(params)} args, got {len(args)}"
            )
        for param, arg in zip(params, args):
            self.env[param.name] = arg
        # geometry placeholders, filled per execution mode
        self.tidx: Dict[str, Value] = {}
        self.bidx: Dict[str, Value] = {}
        self.bdim = {"x": block.x, "y": block.y, "z": block.z}
        self.gdim = {"x": grid.x, "y": grid.y, "z": grid.z}
        self.lattice_shape: Tuple[int, ...] = ()

    # ----------------------------------------------------------------- running

    def uses_shared(self) -> bool:
        return any(
            isinstance(n, ast.VarDecl) and n.is_shared for n in self.kernel.body.walk()
        )

    def run(self) -> None:
        mode = self.block_exec
        if mode not in _BLOCK_EXEC_MODES:
            raise InterpreterError(f"unknown block_exec mode {mode!r}")
        if mode == "compiled":
            if self.detect_races:
                from . import compiler

                compiler.note_fallback(self.kernel.name, "detect_races")
            elif self._run_compiled():
                return
        if not self.uses_shared():
            self._run_vectorized()
            return
        if self.detect_races:
            # the scatter race checks reason about one block at a time;
            # cross-block writes in the same statement would be flagged as
            # intra-block races under batching
            mode = "loop"
        elif mode in ("auto", "compiled"):
            mode = "batched" if self._batchable() else "loop"
        if mode == "batched":
            self._run_batched()
        else:
            self._run_per_block()

    def _run_compiled(self) -> bool:
        """Execute via generated numpy code; False requests interpretation.

        Compilation targets the same two lattices the interpreter uses:
        the full-thread vectorized lattice for kernels without shared
        memory and the batched ``(nb, bx, by, bz)`` lattice for batchable
        shared kernels.  Loop-mode kernels (block-variant bounds, global
        read+write conflicts) and lowering failures fall back per kernel.
        """
        from . import compiler  # deferred: the compiler imports this module

        if not self.uses_shared():
            shape = "vectorized"
        elif self._batchable():
            shape = "batched"
        else:
            compiler.note_fallback(self.kernel.name, "unbatchable_shared")
            return False
        fn = compiler.get_compiled_kernel(self.kernel, shape)
        if fn is None:
            return False
        if shape == "vectorized":
            self._setup_vectorized()
        else:
            self._setup_batched()
        fn(self, np.ones((), dtype=bool))
        return True

    def _batchable(self) -> bool:
        """True when batched execution is bit-equivalent to the block loop.

        Two requirements:

        * every construct the batched mode must scalarize — loop bounds,
          while conditions, shared extents — is statically block-invariant
          (literals, scalar parameters, blockDim/gridDim);
        * no global array is both read and written by the kernel.  The
          sequential block loop lets a later block observe an earlier
          block's global writes, a visibility the all-blocks-at-once
          lattice cannot reproduce; restricting batching to kernels with
          disjoint global read/write sets (by array identity, so aliased
          parameters count) keeps the loop mode's power to expose
          inter-block races through ``block_order`` comparisons.
        """
        if self._global_rw_conflict():
            return False
        scalar_params = {
            p.name for p in self.kernel.params if not p.type.is_pointer
        }

        def uniform(expr: ast.Expr) -> bool:
            if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
                return True
            if isinstance(expr, ast.Ident):
                return expr.name in scalar_params
            if isinstance(expr, ast.Member):
                return isinstance(expr.obj, ast.Ident) and expr.obj.name in (
                    "blockDim",
                    "gridDim",
                )
            if isinstance(expr, ast.Unary):
                return uniform(expr.operand)
            if isinstance(expr, ast.Binary):
                return uniform(expr.lhs) and uniform(expr.rhs)
            if isinstance(expr, ast.Ternary):
                return (
                    uniform(expr.cond)
                    and uniform(expr.then)
                    and uniform(expr.els)
                )
            if isinstance(expr, ast.Call):
                return all(uniform(a) for a in expr.args)
            return False

        for node in self.kernel.body.walk():
            if isinstance(node, ast.For):
                if not (
                    uniform(node.start)
                    and uniform(node.bound)
                    and uniform(node.step)
                ):
                    return False
            elif isinstance(node, ast.While):
                if not uniform(node.cond):
                    return False
            elif isinstance(node, ast.VarDecl) and node.is_shared:
                if not all(uniform(d) for d in node.array_dims):
                    return False
        return True

    def _global_rw_conflict(self) -> bool:
        """Does any device array get both read and written by this kernel?

        Collected syntactically per pointer parameter, then intersected by
        the identity of the bound numpy arrays so that two parameters
        aliasing one allocation conflict as well.
        """
        pointer_params = {
            p.name for p in self.kernel.params if p.type.is_pointer
        }
        reads: set = set()
        writes: set = set()

        def expr_reads(expr: ast.Expr) -> None:
            for node in expr.walk():
                if isinstance(node, ast.Index) and node.array_name in pointer_params:
                    reads.add(node.array_name)

        def visit(stmt: ast.Stmt) -> None:
            if isinstance(stmt, ast.Assign):
                target = stmt.target
                if isinstance(target, ast.Index):
                    if target.array_name in pointer_params:
                        writes.add(target.array_name)
                        if stmt.op != "=":
                            reads.add(target.array_name)
                    for e in target.indices:
                        expr_reads(e)
                expr_reads(stmt.value)
            elif isinstance(stmt, ast.VarDecl):
                for d in stmt.array_dims:
                    expr_reads(d)
                if stmt.init is not None:
                    expr_reads(stmt.init)
            elif isinstance(stmt, ast.If):
                expr_reads(stmt.cond)
                visit(stmt.then)
                if stmt.els is not None:
                    visit(stmt.els)
            elif isinstance(stmt, ast.For):
                expr_reads(stmt.start)
                expr_reads(stmt.bound)
                expr_reads(stmt.step)
                visit(stmt.body)
            elif isinstance(stmt, ast.While):
                expr_reads(stmt.cond)
                visit(stmt.body)
            elif isinstance(stmt, ast.ExprStmt):
                expr_reads(stmt.expr)
            elif isinstance(stmt, ast.Block):
                for s in stmt.stmts:
                    visit(s)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    expr_reads(stmt.value)

        visit(self.kernel.body)
        read_ids = {
            id(self.env[n]) for n in reads if isinstance(self.env.get(n), np.ndarray)
        }
        write_ids = {
            id(self.env[n]) for n in writes if isinstance(self.env.get(n), np.ndarray)
        }
        return bool(read_ids & write_ids)

    def _visit_order(self) -> List[Tuple[int, int, int]]:
        blocks = [
            (gx, gy, gz)
            for gz in range(self.grid.z)
            for gy in range(self.grid.y)
            for gx in range(self.grid.x)
        ]
        if self.block_order == "reverse":
            blocks.reverse()
        return blocks

    def _setup_vectorized(self) -> None:
        gx, gy, gz = self.grid.as_tuple()
        bx, by, bz = self.block.as_tuple()
        nx, ny, nz = gx * bx, gy * by, gz * bz
        self.lattice_shape = (nx, ny, nz)
        self._blocks_covered = self.grid.count
        ax = np.arange(nx).reshape(nx, 1, 1)
        ay = np.arange(ny).reshape(1, ny, 1)
        az = np.arange(nz).reshape(1, 1, nz)
        self.tidx = {"x": ax % bx, "y": ay % by, "z": az % bz}
        self.bidx = {"x": ax // bx, "y": ay // by, "z": az // bz}

    def _run_vectorized(self) -> None:
        self._setup_vectorized()
        mask = np.ones((), dtype=bool)  # scalar True: all threads active
        self._exec_block(self.kernel.body, mask)

    def _run_per_block(self) -> None:
        bx, by, bz = self.block.as_tuple()
        self.lattice_shape = (bx, by, bz)
        self._blocks_covered = 1
        self.tidx = {
            "x": np.arange(bx).reshape(bx, 1, 1),
            "y": np.arange(by).reshape(1, by, 1),
            "z": np.arange(bz).reshape(1, 1, bz),
        }
        base_env = dict(self.env)
        for gx, gy, gz in self._visit_order():
            self.bidx = {"x": gx, "y": gy, "z": gz}
            self.env = dict(base_env)
            self.shared = {}
            mask = np.ones((), dtype=bool)
            self._exec_block(self.kernel.body, mask)

    def _setup_batched(self) -> None:
        """Prepare the batched lattice: per-block semantics, one extra
        numpy axis instead of a loop.

        The lattice is ``(nb, bx, by, bz)``: axis 0 enumerates the blocks
        of the launch grid *in visit order* (so numpy's last-wins scatter
        resolution of duplicate indices reproduces the sequential loop's
        block ordering, forward or reverse), and the remaining axes are
        the intra-block thread coordinates.  Shared arrays carry the same
        leading block axis, keeping tiles scoped to their own block.
        """
        blocks = self._visit_order()
        nb = len(blocks)
        bx, by, bz = self.block.as_tuple()
        self.lattice_shape = (nb, bx, by, bz)
        self._blocks_covered = nb
        self.tidx = {
            "x": np.arange(bx).reshape(1, bx, 1, 1),
            "y": np.arange(by).reshape(1, 1, by, 1),
            "z": np.arange(bz).reshape(1, 1, 1, bz),
        }
        self.bidx = {
            "x": np.array([b[0] for b in blocks]).reshape(nb, 1, 1, 1),
            "y": np.array([b[1] for b in blocks]).reshape(nb, 1, 1, 1),
            "z": np.array([b[2] for b in blocks]).reshape(nb, 1, 1, 1),
        }
        self._block_axis = np.arange(nb).reshape(nb, 1, 1, 1)

    def _run_batched(self) -> None:
        self._setup_batched()
        mask = np.ones((), dtype=bool)
        self._exec_block(self.kernel.body, mask)

    # -------------------------------------------------------------- counters

    def _active_threads(self, mask: Value) -> int:
        """Threads the current mask keeps active over the full lattice."""
        if isinstance(mask, np.ndarray) and mask.ndim > 0:
            return int(np.count_nonzero(np.broadcast_to(mask, self.lattice_shape)))
        total = 1
        for extent in self.lattice_shape:
            total *= extent
        return total

    # -------------------------------------------------------------- statements

    def _exec_block(self, block: ast.Block, mask: Value) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, mask)

    def _exec_stmt(self, stmt: ast.Stmt, mask: Value) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._exec_decl(stmt, mask)
        elif isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, mask)
        elif isinstance(stmt, ast.If):
            cond = self._eval(stmt.cond, mask)
            if isinstance(cond, np.ndarray) and cond.ndim > 0:
                then_mask = np.logical_and(mask, cond)
                if self.counters is not None:
                    # active threads disagree on a thread-varying condition
                    off_mask = np.logical_and(mask, np.logical_not(cond))
                    if np.any(then_mask) and np.any(off_mask):
                        self.counters.branch_divergence += 1
                if np.any(then_mask):
                    self._exec_block(stmt.then, then_mask)
                if stmt.els is not None:
                    else_mask = np.logical_and(mask, np.logical_not(cond))
                    if np.any(else_mask):
                        self._exec_block(stmt.els, else_mask)
            else:
                if bool(cond):
                    self._exec_block(stmt.then, mask)
                elif stmt.els is not None:
                    self._exec_block(stmt.els, mask)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, mask)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, mask)
        elif isinstance(stmt, ast.SyncThreads):
            # statements already act as barriers in vectorized execution;
            # the counter still records one barrier per covered block
            if self.counters is not None:
                self.counters.syncthreads += self._blocks_covered
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, mask)
        elif isinstance(stmt, ast.Return):
            raise _ReturnSignal()
        elif isinstance(stmt, ast.Block):
            self._exec_block(stmt, mask)
        else:
            raise InterpreterError(f"unsupported statement {type(stmt).__name__}")

    def decl_shared(self, name: str, dims: List[int], base: str) -> None:
        """Allocate a shared tile (also the compiled-kernel entry point)."""
        dims = [int(d) for d in dims]
        dtype = np.float64 if base in ("double", "float") else np.int64
        if self._block_axis is not None:
            # one tile per block, stacked along the batch axis
            dims = [self.lattice_shape[0]] + dims
        self.shared[name] = np.zeros(tuple(dims), dtype=dtype)

    def _exec_decl(self, decl: ast.VarDecl, mask: Value) -> None:
        if decl.is_shared:
            dims = [
                int(self._eval_scalar(dim, "shared array dimension"))
                for dim in decl.array_dims
            ]
            self.decl_shared(decl.name, dims, decl.type.base)
            return
        if decl.array_dims:
            raise InterpreterError(
                f"local array {decl.name!r} without __shared__ is unsupported"
            )
        if decl.init is None:
            value: Value = 0 if decl.type.base == "int" else 0.0
        else:
            value = self._eval(decl.init, mask)
            if decl.type.base == "int":
                value = _as_int(value)
            elif decl.type.base in ("double", "float"):
                value = _as_float(value)
        self.env[decl.name] = value

    def _exec_assign(self, stmt: ast.Assign, mask: Value) -> None:
        value = self._eval(stmt.value, mask)
        if stmt.op != "=":
            current = self._eval(stmt.target, mask)
            binop = stmt.op[0]
            value = _BINOPS[binop](current, value)
        target = stmt.target
        if isinstance(target, ast.Ident):
            self._store_scalar(target.name, value, mask)
        elif isinstance(target, ast.Index):
            self._store_array(target, value, mask)
        else:
            raise InterpreterError("invalid assignment target")

    def _store_scalar(self, name: str, value: Value, mask: Value) -> None:
        fully_active = not (isinstance(mask, np.ndarray) and mask.ndim > 0)
        if fully_active:
            self.env[name] = value
            return
        old = self.env.get(name)
        if old is None:
            old = 0
        self.env[name] = np.where(mask, value, old)

    def _lookup_array(self, name: str) -> np.ndarray:
        if name in self.shared:
            return self.shared[name]
        value = self.env.get(name)
        if isinstance(value, np.ndarray):
            return value
        raise InterpreterError(f"{name!r} is not an array")

    def _resolve_access(
        self, name: Optional[str], nidx: int
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Resolve an array access to (array, prefix).

        ``prefix`` is the implicit leading block-axis index for batched
        shared arrays (empty otherwise); the user-visible dimensionality
        is checked against the declared shape without the batch axis.
        """
        if name is None:
            raise InterpreterError("array base must be a name")
        arr = self._lookup_array(name)
        prefix: List[np.ndarray] = []
        ndim = arr.ndim
        if self._block_axis is not None and name in self.shared:
            prefix = [self._block_axis]
            ndim -= 1
        if nidx != ndim:
            raise InterpreterError(
                f"array {name!r} has {ndim} dims, indexed with {nidx}"
            )
        return arr, prefix

    def _index_arrays(
        self, target: ast.Index, mask: Value
    ) -> Tuple[np.ndarray, List[np.ndarray], List[Value]]:
        arr, prefix = self._resolve_access(target.array_name, len(target.indices))
        idxs = [self._eval(e, mask) for e in target.indices]
        return arr, prefix, idxs

    def _validate_indices(
        self,
        name: str,
        arr: np.ndarray,
        idxs: List[Value],
        mask: Value,
        offset: int = 0,
    ) -> List[Value]:
        """Check active-thread indices are in bounds; clip inactive ones.

        ``offset`` skips leading storage axes that carry no user index
        (the block axis of a batched shared array).
        """
        masked = isinstance(mask, np.ndarray) and mask.ndim > 0
        safe: List[Value] = []
        for axis, idx in enumerate(idxs):
            extent = arr.shape[axis + offset]
            if isinstance(idx, np.ndarray) and idx.ndim > 0:
                bad = (idx < 0) | (idx >= extent)
                if masked:
                    bad = np.logical_and(bad, mask)
                if np.any(bad):
                    block, thread, value = self._locate_oob(bad, idx)
                    where = (
                        f" at block {block} thread {thread}"
                        if block is not None
                        else ""
                    )
                    shown = f"index {value} " if value is not None else "index "
                    raise OutOfBoundsError(
                        f"array {name!r} axis {axis}: active thread {shown}out "
                        f"of [0, {extent}) during kernel "
                        f"{self.kernel.name!r}{where}",
                        kernel=self.kernel.name,
                        array=name,
                        axis=axis,
                        index=value,
                        block=block,
                        thread=thread,
                    )
                safe.append(np.clip(idx, 0, extent - 1))
            else:
                value = int(idx)
                if value < 0 or value >= extent:
                    block, thread = self._current_block_thread()
                    where = (
                        f" at block {block}" if block is not None else ""
                    )
                    raise OutOfBoundsError(
                        f"array {name!r} axis {axis}: index {value} out of "
                        f"[0, {extent}) during kernel "
                        f"{self.kernel.name!r}{where}",
                        kernel=self.kernel.name,
                        array=name,
                        axis=axis,
                        index=value,
                        block=block,
                        thread=thread,
                    )
                safe.append(value)
        return safe

    def _current_block_thread(
        self,
    ) -> Tuple[Optional[Tuple[int, int, int]], Optional[Tuple[int, int, int]]]:
        """Block coordinates for a thread-invariant failure (loop mode only:
        the vectorized and batched lattices span every block at once)."""
        bx = self.bidx.get("x")
        if isinstance(bx, (int, np.integer)):
            return (
                (int(bx), int(self.bidx["y"]), int(self.bidx["z"])),  # type: ignore[arg-type]
                None,
            )
        return None, None

    def _locate_oob(
        self, bad: Value, idx: Value
    ) -> Tuple[
        Optional[Tuple[int, int, int]],
        Optional[Tuple[int, int, int]],
        Optional[int],
    ]:
        """Locate the first offending thread of an out-of-bounds access.

        Returns ``(block, thread, index)`` in launch coordinates, or
        ``None`` components when the executing mode cannot attribute the
        access (location is best-effort diagnostics; it must never mask
        the underlying error).
        """
        try:
            shape = self.lattice_shape
            bad_arr = np.broadcast_to(np.asarray(bad), shape)
            flat = int(np.argmax(bad_arr))
            if not bool(bad_arr.flat[flat]):
                return None, None, None
            value = int(np.broadcast_to(np.asarray(idx), shape).flat[flat])
            coords = tuple(int(c) for c in np.unravel_index(flat, shape))
            if self._block_axis is not None and len(coords) == 4:
                nb, tx, ty, tz = coords
                block = (
                    int(np.asarray(self.bidx["x"]).reshape(-1)[nb]),
                    int(np.asarray(self.bidx["y"]).reshape(-1)[nb]),
                    int(np.asarray(self.bidx["z"]).reshape(-1)[nb]),
                )
                return block, (tx, ty, tz), value
            if len(coords) == 3:
                cx, cy, cz = coords
                if isinstance(self.bidx.get("x"), np.ndarray):
                    # vectorized: lattice coordinates are global threads
                    bx, by, bz = self.block.as_tuple()
                    return (
                        (cx // bx, cy // by, cz // bz),
                        (cx % bx, cy % by, cz % bz),
                        value,
                    )
                # per-block loop: the lattice is one block's threads
                return (
                    (
                        int(self.bidx["x"]),  # type: ignore[arg-type]
                        int(self.bidx["y"]),  # type: ignore[arg-type]
                        int(self.bidx["z"]),  # type: ignore[arg-type]
                    ),
                    (cx, cy, cz),
                    value,
                )
            return None, None, value
        except Exception:  # pragma: no cover - diagnostics must not raise
            return None, None, None

    def _store_array(self, target: ast.Index, value: Value, mask: Value) -> None:
        arr, prefix, idxs = self._index_arrays(target, mask)
        name = target.array_name or "<anon>"
        self._finish_store(name, arr, prefix, idxs, value, mask)

    def store_values(
        self, name: str, idxs: List[Value], value: Value, mask: Value
    ) -> None:
        """Masked scatter into array ``name`` (compiled-kernel entry point).

        Shares validation, counters and scatter semantics with the AST
        path (:meth:`_store_array`) so compiled and interpreted execution
        are bit-identical by construction.
        """
        arr, prefix = self._resolve_access(name, len(idxs))
        self._finish_store(name, arr, prefix, list(idxs), value, mask)

    def _finish_store(
        self,
        name: str,
        arr: np.ndarray,
        prefix: List[np.ndarray],
        idxs: List[Value],
        value: Value,
        mask: Value,
    ) -> None:
        idxs = self._validate_indices(name, arr, idxs, mask, offset=len(prefix))
        if self.counters is not None:
            self.counters.count_store(
                name in self.shared, self._active_threads(mask), arr.dtype.itemsize
            )
        vector_axes = [
            i for i, idx in enumerate(idxs) if isinstance(idx, np.ndarray) and idx.ndim
        ]
        masked = isinstance(mask, np.ndarray) and mask.ndim > 0
        if not vector_axes and not prefix:
            # thread-invariant store: every active thread hits one location
            if masked and not np.any(mask):
                return
            if self.detect_races and isinstance(value, np.ndarray) and value.ndim:
                if masked:
                    shape = np.broadcast_shapes(value.shape, mask.shape)
                    active_vals = np.broadcast_to(value, shape)[
                        np.broadcast_to(mask, shape)
                    ]
                else:
                    active_vals = np.asarray(value).ravel()
                if active_vals.size > 1 and not np.all(
                    active_vals == active_vals.flat[0]
                ):
                    raise InterpreterError(
                        f"write-write race on array {name!r} in kernel "
                        f"{self.kernel.name!r}"
                    )
            arr[tuple(int(i) for i in idxs)] = self._scalarize(value, mask)
            return
        if not vector_axes:
            # batched shared array, thread-invariant user indices: each
            # block independently stores its first active thread's value
            # into its own tile slot (the per-block scalar-store rule)
            self._store_shared_scalar(arr, idxs, value, mask)
            return
        all_idxs = list(prefix) + list(idxs)
        # the broadcast lattice must also cover value/mask variance that the
        # indices alone do not span (e.g. a block-axis prefix of (nb,1,1,1)
        # stored with thread-varying values of shape (1,bx,1,1))
        shapes = [np.asarray(i).shape for i in all_idxs]
        if isinstance(value, np.ndarray):
            shapes.append(value.shape)
        if masked:
            shapes.append(np.asarray(mask).shape)
        shape = np.broadcast_shapes(*shapes)
        full_idxs = [np.broadcast_to(np.asarray(i), shape) for i in all_idxs]
        value_arr = np.broadcast_to(np.asarray(value), shape)
        if masked:
            mask_arr = np.broadcast_to(mask, shape)
            sel = tuple(ix[mask_arr] for ix in full_idxs)
            if self.detect_races:
                self._check_race(name, arr, sel, value_arr[mask_arr])
            arr[sel] = value_arr[mask_arr]
        else:
            if self.detect_races:
                flat = tuple(ix.ravel() for ix in full_idxs)
                self._check_race(name, arr, flat, value_arr.ravel())
            arr[tuple(full_idxs)] = value_arr

    def _store_shared_scalar(
        self, arr: np.ndarray, idxs: List[Value], value: Value, mask: Value
    ) -> None:
        """Batched equivalent of the loop-mode scalar store to shared memory:
        block ``b`` writes the value its first active thread holds, blocks
        with no active thread leave their slot untouched."""
        nb = self.lattice_shape[0]
        masked = isinstance(mask, np.ndarray) and mask.ndim > 0
        if masked and not np.any(mask):
            return
        shape = self.lattice_shape
        v = np.broadcast_to(np.asarray(value), shape).reshape(nb, -1)
        m = (
            np.broadcast_to(mask, shape).reshape(nb, -1)
            if masked
            else np.ones((nb, 1), dtype=bool)
        )
        active = m.any(axis=1)
        first = m.argmax(axis=1)
        picked = v[np.arange(nb), np.minimum(first, v.shape[1] - 1)]
        cell = tuple(int(i) for i in idxs)
        arr[(np.arange(nb)[active],) + cell] = picked[active]

    def _check_race(
        self, name: str, arr: np.ndarray, sel: Tuple[np.ndarray, ...], values: np.ndarray
    ) -> None:
        """Detect two active threads writing different values to one cell."""
        linear = np.ravel_multi_index(sel, arr.shape)
        order = np.argsort(linear, kind="stable")
        sorted_lin = linear[order]
        sorted_val = np.asarray(values).ravel()[order]
        dup = sorted_lin[1:] == sorted_lin[:-1]
        if np.any(dup & (sorted_val[1:] != sorted_val[:-1])):
            raise InterpreterError(
                f"write-write race on array {name!r} in kernel "
                f"{self.kernel.name!r}"
            )

    def _scalarize(self, value: Value, mask: Value) -> Scalar:
        if isinstance(value, np.ndarray) and value.ndim > 0:
            masked = isinstance(mask, np.ndarray) and mask.ndim > 0
            shape = (
                np.broadcast_shapes(value.shape, mask.shape)
                if masked
                else value.shape
            )
            if self._block_axis is not None and len(shape) == 4 and shape[0] > 1:
                # batched: the sequential loop would have every active block
                # write in turn, so the surviving value belongs to the LAST
                # active block (first active thread within it)
                v = np.broadcast_to(value, shape).reshape(shape[0], -1)
                m = (
                    np.broadcast_to(mask, shape).reshape(shape[0], -1)
                    if masked
                    else np.ones((shape[0], 1), dtype=bool)
                )
                active = np.nonzero(m.any(axis=1))[0]
                if active.size == 0:
                    return 0
                last = int(active[-1])
                return v[last, int(np.minimum(m[last].argmax(), v.shape[1] - 1))]
            if masked:
                picked = np.broadcast_to(value, shape)[np.broadcast_to(mask, shape)]
            else:
                picked = value.ravel()
            if picked.size == 0:
                return 0
            return picked.flat[0]
        return value

    def _exec_for(self, stmt: ast.For, mask: Value) -> None:
        start = self._eval_scalar(stmt.start, "loop start")
        bound = self._eval_scalar(stmt.bound, "loop bound")
        step = self._eval_scalar(stmt.step, "loop step")
        if step <= 0:
            raise InterpreterError("loop step must be positive")
        end = bound + 1 if stmt.cmp == "<=" else bound
        saved = self.env.get(stmt.var, _MISSING)
        value = start
        while value < end:
            self.env[stmt.var] = int(value)
            self._exec_block(stmt.body, mask)
            value += step
        if saved is _MISSING:
            self.env.pop(stmt.var, None)
        else:
            self.env[stmt.var] = saved

    def _exec_while(self, stmt: ast.While, mask: Value) -> None:
        iterations = 0
        while True:
            cond = self._eval(stmt.cond, mask)
            if isinstance(cond, np.ndarray) and cond.ndim > 0:
                raise InterpreterError("thread-dependent while condition unsupported")
            if not bool(cond):
                return
            self._exec_block(stmt.body, mask)
            iterations += 1
            if iterations > 10_000_000:
                raise InterpreterError("while loop exceeded iteration limit")

    def _eval_scalar(self, expr: ast.Expr, what: str) -> Scalar:
        value = self._eval(expr, np.ones((), dtype=bool))
        if isinstance(value, np.ndarray) and value.ndim > 0:
            raise InterpreterError(f"{what} must be thread-invariant")
        if isinstance(value, np.ndarray):
            return value.item()
        return value

    # ------------------------------------------------------------- expressions

    def _eval(self, expr: ast.Expr, mask: Value) -> Value:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.Ident):
            try:
                return self.env[expr.name]
            except KeyError:
                raise InterpreterError(
                    f"undefined name {expr.name!r} in kernel {self.kernel.name!r}"
                ) from None
        if isinstance(expr, ast.Member):
            return self._eval_member(expr)
        if isinstance(expr, ast.Index):
            return self._eval_index(expr, mask)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, mask)
        if isinstance(expr, ast.Unary):
            operand = self._eval(expr.operand, mask)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return np.logical_not(operand)
            return operand
        if isinstance(expr, ast.Binary):
            lhs = self._eval(expr.lhs, mask)
            rhs = self._eval(expr.rhs, mask)
            return _BINOPS[expr.op](lhs, rhs)
        if isinstance(expr, ast.Ternary):
            cond = self._eval(expr.cond, mask)
            then = self._eval(expr.then, mask)
            els = self._eval(expr.els, mask)
            if isinstance(cond, np.ndarray) and cond.ndim > 0:
                return np.where(cond, then, els)
            return then if bool(cond) else els
        raise InterpreterError(f"unsupported expression {type(expr).__name__}")

    def _eval_member(self, expr: ast.Member) -> Value:
        if not isinstance(expr.obj, ast.Ident):
            raise InterpreterError("unsupported member access")
        table = {
            "threadIdx": self.tidx,
            "blockIdx": self.bidx,
            "blockDim": self.bdim,
            "gridDim": self.gdim,
        }.get(expr.obj.name)
        if table is None:
            raise InterpreterError(f"unknown builtin {expr.obj.name!r}")
        return table[expr.field_name]

    def _eval_index(self, expr: ast.Index, mask: Value) -> Value:
        arr, prefix, idxs = self._index_arrays(expr, mask)
        name = expr.array_name or "<anon>"
        return self._finish_load(name, arr, prefix, idxs, mask)

    def load_values(self, name: str, idxs: List[Value], mask: Value) -> Value:
        """Gather from array ``name`` (compiled-kernel entry point).

        Same bounds validation, counter increments and gather semantics
        as the AST path (:meth:`_eval_index`).
        """
        arr, prefix = self._resolve_access(name, len(idxs))
        return self._finish_load(name, arr, prefix, list(idxs), mask)

    def _finish_load(
        self,
        name: str,
        arr: np.ndarray,
        prefix: List[np.ndarray],
        idxs: List[Value],
        mask: Value,
    ) -> Value:
        idxs = self._validate_indices(name, arr, idxs, mask, offset=len(prefix))
        if self.counters is not None:
            self.counters.count_load(
                name in self.shared, self._active_threads(mask), arr.dtype.itemsize
            )
        full = list(prefix) + list(idxs)
        if all(not (isinstance(i, np.ndarray) and i.ndim) for i in full):
            return arr[tuple(int(i) for i in full)]
        return arr[tuple(np.asarray(i) for i in full)]

    def _eval_call(self, expr: ast.Call, mask: Value) -> Value:
        args = [self._eval(a, mask) for a in expr.args]
        if expr.func in _MATH_FUNCS:
            if len(args) != 1:
                raise InterpreterError(f"{expr.func} expects 1 argument")
            return _MATH_FUNCS[expr.func](args[0])
        if expr.func in _MATH_FUNCS2:
            if len(args) != 2:
                raise InterpreterError(f"{expr.func} expects 2 arguments")
            return _MATH_FUNCS2[expr.func](args[0], args[1])
        raise InterpreterError(f"unknown kernel function {expr.func!r}")


class _ReturnSignal(Exception):
    pass


_MISSING = object()


class HostInterpreter:
    """Executes the host side of a CudaLite program (``main``).

    Parameters
    ----------
    program:
        The program to execute.
    detect_races:
        If True, kernel scatters check for write-write races (slower).
    """

    def __init__(
        self,
        program: ast.Program,
        detect_races: bool = False,
        execute_kernels: bool = True,
        block_order: str = "forward",
        block_exec: Optional[str] = None,
        collect_counters: bool = False,
    ) -> None:
        """``block_order`` ('forward' | 'reverse') sets the sequential order
        in which per-block kernel execution visits thread blocks; running a
        program under both orders and comparing outputs exposes inter-block
        races that a single deterministic order would mask.

        ``block_exec`` ('auto' | 'loop' | 'batched') selects the
        shared-memory execution strategy; ``None`` defers to the
        ``REPRO_BLOCK_EXEC`` environment variable (default 'auto')."""
        self.program = program
        self.detect_races = detect_races
        self.execute_kernels = execute_kernels
        self.block_order = block_order
        self.block_exec = block_exec_from_env() if block_exec is None else block_exec
        self.collect_counters = collect_counters
        self.env: Dict[str, Any] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        self.launches: List[LaunchRecord] = []
        self._array_names: Dict[int, str] = {}

    # -------------------------------------------------------------------- run

    def run(self) -> RunResult:
        main = self.program.main()
        try:
            self._exec_stmts(main.body.stmts)
        except _ReturnSignal:
            pass
        return RunResult(arrays=dict(self.arrays), launches=list(self.launches))

    def _exec_stmts(self, stmts: Tuple[ast.Stmt, ...]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._exec_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            if not isinstance(stmt.target, ast.Ident):
                raise InterpreterError("host assignments must target scalars")
            value = self._eval(stmt.value)
            if stmt.op != "=":
                value = _BINOPS[stmt.op[0]](self.env[stmt.target.name], value)
            self.env[stmt.target.name] = value
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, statement=True)
        elif isinstance(stmt, ast.Launch):
            self._exec_launch(stmt)
        elif isinstance(stmt, ast.If):
            if bool(self._eval(stmt.cond)):
                self._exec_stmts(stmt.then.stmts)
            elif stmt.els is not None:
                self._exec_stmts(stmt.els.stmts)
        elif isinstance(stmt, ast.For):
            start = int(self._eval(stmt.start))
            bound = int(self._eval(stmt.bound))
            step = int(self._eval(stmt.step))
            end = bound + 1 if stmt.cmp == "<=" else bound
            for value in range(start, end, step):
                self.env[stmt.var] = value
                self._exec_stmts(stmt.body.stmts)
        elif isinstance(stmt, ast.Return):
            raise _ReturnSignal()
        elif isinstance(stmt, ast.Block):
            self._exec_stmts(stmt.stmts)
        else:
            raise InterpreterError(
                f"unsupported host statement {type(stmt).__name__}"
            )

    def _exec_decl(self, decl: ast.VarDecl) -> None:
        init = decl.init
        if decl.type.base == "dim3":
            if not isinstance(init, ast.Call) or init.func != "dim3":
                raise InterpreterError(f"dim3 {decl.name} needs a dim3(...) initializer")
            dims = [int(self._eval(a)) for a in init.args]
            while len(dims) < 3:
                dims.append(1)
            self.env[decl.name] = Dim3(*dims[:3])
            return
        if decl.type.is_pointer:
            if not isinstance(init, ast.Call) or not init.func.startswith("cudaMalloc"):
                raise InterpreterError(
                    f"pointer {decl.name} must be initialized with cudaMallocND"
                )
            shape = tuple(int(self._eval(a)) for a in init.args)
            expected = {"cudaMalloc1D": 1, "cudaMalloc2D": 2, "cudaMalloc3D": 3}[
                init.func
            ]
            if len(shape) != expected:
                raise InterpreterError(
                    f"{init.func} expects {expected} extent args, got {len(shape)}"
                )
            dtype = np.float64 if decl.type.base in ("double", "float") else np.int64
            data = np.zeros(shape, dtype=dtype)
            self.arrays[decl.name] = data
            self.env[decl.name] = data
            self._array_names[id(data)] = decl.name
            return
        value = self._eval(init) if init is not None else 0
        if decl.type.base == "int":
            value = int(value)
        self.env[decl.name] = value

    def _exec_launch(self, stmt: ast.Launch) -> None:
        kernel = self.program.kernel(stmt.kernel)
        grid = self._eval_dim3(stmt.grid)
        block = self._eval_dim3(stmt.block)
        args = [self._eval(a) for a in stmt.args]
        array_args = tuple(
            self._array_names.get(id(a), "?")
            for a in args
            if isinstance(a, np.ndarray)
        )
        scalar_args = tuple(a for a in args if not isinstance(a, np.ndarray))
        counters = (
            KernelCounters(kernel=stmt.kernel)
            if self.collect_counters and self.execute_kernels
            else None
        )
        self.launches.append(
            LaunchRecord(
                stmt.kernel, grid, block, array_args, scalar_args, counters=counters
            )
        )
        if not self.execute_kernels:
            return
        executor = _KernelExec(
            kernel, grid, block, args, self.arrays, self.detect_races,
            self.block_order, self.block_exec, counters=counters,
        )
        try:
            with span(f"interp:{stmt.kernel}", grid=grid.count):
                executor.run()
        except _ReturnSignal:
            pass

    def _eval_dim3(self, expr: ast.Expr) -> Dim3:
        value = self._eval(expr)
        if isinstance(value, Dim3):
            return value
        if isinstance(value, (int, np.integer)):
            return Dim3(int(value), 1, 1)
        raise InterpreterError("launch configuration must be dim3 or int")

    def _eval(self, expr: ast.Expr, statement: bool = False) -> Any:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.Ident):
            try:
                return self.env[expr.name]
            except KeyError:
                raise InterpreterError(f"undefined host name {expr.name!r}") from None
        if isinstance(expr, ast.Binary):
            return _BINOPS[expr.op](self._eval(expr.lhs), self._eval(expr.rhs))
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand)
            return -value if expr.op == "-" else np.logical_not(value)
        if isinstance(expr, ast.Call):
            return self._eval_host_call(expr, statement)
        raise InterpreterError(
            f"unsupported host expression {type(expr).__name__}"
        )

    def _eval_host_call(self, expr: ast.Call, statement: bool) -> Any:
        func = expr.func
        if func == "dim3":
            dims = [int(self._eval(a)) for a in expr.args]
            while len(dims) < 3:
                dims.append(1)
            return Dim3(*dims[:3])
        if func in ("cudaDeviceSynchronize",):
            return 0
        if func == "cudaFree":
            return 0
        if func in ("cudaMemcpyToHost", "cudaMemcpyToDevice"):
            # logical no-op in the simulator: device arrays already live in
            # host-visible numpy storage
            return 0
        if func == "deviceRandom":
            if len(expr.args) != 2:
                raise InterpreterError("deviceRandom(array, seed)")
            arr = self._eval(expr.args[0])
            seed = int(self._eval(expr.args[1]))
            if not isinstance(arr, np.ndarray):
                raise InterpreterError("deviceRandom target must be a device array")
            rng = np.random.default_rng(seed)
            arr[...] = rng.random(arr.shape)
            return 0
        if func == "deviceFill":
            arr = self._eval(expr.args[0])
            value = self._eval(expr.args[1])
            if not isinstance(arr, np.ndarray):
                raise InterpreterError("deviceFill target must be a device array")
            arr[...] = value
            return 0
        if func in ("sqrt", "fabs", "exp"):
            return _MATH_FUNCS[func](self._eval(expr.args[0]))
        if func in ("min", "max"):
            return _MATH_FUNCS2[func](
                self._eval(expr.args[0]), self._eval(expr.args[1])
            )
        raise InterpreterError(f"unknown host function {func!r}")


def launch_kernel(
    kernel: ast.KernelDef,
    grid: Dim3,
    block: Dim3,
    args: List[Value],
    *,
    detect_races: bool = False,
    block_order: str = "forward",
    block_exec: Optional[str] = None,
    counters: Optional[KernelCounters] = None,
) -> None:
    """Execute a single kernel launch against caller-provided arguments.

    Device arrays are passed (and mutated) in place as numpy arrays in
    ``args``, in kernel-parameter order.  This is the entry point for the
    per-group verification gate, which replays individual kernels outside
    any host program.  Pass a :class:`KernelCounters` to have the launch's
    memory/sync/divergence events tallied into it.
    """
    executor = _KernelExec(
        kernel,
        grid,
        block,
        list(args),
        {},
        detect_races,
        block_order,
        block_exec_from_env() if block_exec is None else block_exec,
        counters=counters,
    )
    try:
        executor.run()
    except _ReturnSignal:
        pass


def run_program(
    program: ast.Program,
    detect_races: bool = False,
    block_order: str = "forward",
    block_exec: Optional[str] = None,
    collect_counters: bool = False,
) -> RunResult:
    """Execute ``program`` on the simulator and return final device arrays."""
    return HostInterpreter(
        program,
        detect_races=detect_races,
        block_order=block_order,
        block_exec=block_exec,
        collect_counters=collect_counters,
    ).run()


def trace_launches(program: ast.Program) -> RunResult:
    """Dry-run the host code: record launches without executing kernels.

    Used by the metadata gatherer, which needs launch configurations and
    actual argument bindings but not the numerical results.
    """
    return HostInterpreter(program, execute_kernels=False).run()


def outputs_allclose(
    a: RunResult, b: RunResult, rtol: float = 1e-10, atol: float = 1e-12
) -> bool:
    """Compare the device arrays of two runs (the paper's verification step)."""
    if set(a.arrays) != set(b.arrays):
        return False
    return all(
        np.allclose(a.arrays[name], b.arrays[name], rtol=rtol, atol=atol)
        for name in a.arrays
    )

"""Lowering CudaLite kernels to generated numpy Python source.

The tree-walking interpreter pays Python dispatch per AST node per
statement execution.  This module removes that cost by lowering a kernel
body *once* into straight-line Python source — a function of the executing
:class:`~repro.gpu.interpreter._KernelExec` and the initial thread mask —
that the compiler (:mod:`repro.gpu.compiler`) ``compile()``s and caches.

Bit-identical by construction
-----------------------------
The generated code is not an independent reimplementation of the
semantics: every array access funnels through the interpreter's own
``load_values`` / ``store_values`` / ``decl_shared`` methods, which carry
the bounds validation, hardware-ish counter increments and scatter
resolution rules.  Scalar control flow (masks, loop protocols, the
divergence counter) is emitted as a statement-for-statement transcription
of ``_KernelExec._exec_stmt``.  Outputs and counters therefore match the
tree-walker exactly, in all execution shapes (the same lowered source
serves both the vectorized and the batched lattice — all shape-specific
state lives on the executor).

What does not lower
-------------------
Constructs whose faithful execution needs the interpreter's dynamic
environment raise :class:`~repro.errors.LoweringError`, and the compiled
mode falls back per kernel:

* local (non-``__shared__``) arrays, unknown calls, malformed targets —
  anything the interpreter itself would reject at runtime;
* reads of variables that are only *conditionally* defined (assigned in
  one branch, read later) — the interpreter resolves these against its
  live environment;
* generated sources exceeding :data:`MAX_LINES` (deeply nested
  data-dependent control flow duplicates branch bodies along the
  vector/scalar mask split).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..cudalite import ast_nodes as ast
from ..errors import InterpreterError, LoweringError

__all__ = [
    "LOWERING_VERSION",
    "MAX_LINES",
    "LoweringError",
    "lower_kernel",
    "runtime_namespace",
]

#: Salt for persistent compiled-kernel artifacts: bump on any change to
#: the generated code's semantics so stale sources are never reloaded.
LOWERING_VERSION = 1

#: Upper bound on emitted source lines before lowering gives up.
MAX_LINES = 4000

_GEOMETRY = {
    ("threadIdx", "x"): "_tix",
    ("threadIdx", "y"): "_tiy",
    ("threadIdx", "z"): "_tiz",
    ("blockIdx", "x"): "_bix",
    ("blockIdx", "y"): "_biy",
    ("blockIdx", "z"): "_biz",
    ("blockDim", "x"): "_bdx",
    ("blockDim", "y"): "_bdy",
    ("blockDim", "z"): "_bdz",
    ("gridDim", "x"): "_gdx",
    ("gridDim", "y"): "_gdy",
    ("gridDim", "z"): "_gdz",
}

#: Math calls map to the same numpy callables the interpreter dispatches
#: to (`_MATH_FUNCS` / `_MATH_FUNCS2`), referenced by attribute.
_MATH1_CODE = {
    "sqrt": "np.sqrt",
    "fabs": "np.abs",
    "abs": "np.abs",
    "exp": "np.exp",
    "log": "np.log",
    "sin": "np.sin",
    "cos": "np.cos",
    "tan": "np.tan",
    "floor": "np.floor",
    "ceil": "np.ceil",
}

_MATH2_CODE = {
    "pow": "np.power",
    "min": "np.minimum",
    "max": "np.maximum",
    "fmin": "np.minimum",
    "fmax": "np.maximum",
}

_ARITH_OPS = {"+", "-", "*", "<", "<=", ">", ">=", "==", "!="}


def _rt_scalar(value, what):
    """Runtime guard for thread-invariant contexts (loop bounds, extents)."""
    if isinstance(value, np.ndarray) and value.ndim > 0:
        raise InterpreterError(f"{what} must be thread-invariant")
    if isinstance(value, np.ndarray):
        return value.item()
    return value


def _rt_ternary(cond, then, els):
    """Runtime `?:` with the interpreter's eager-both-arms semantics."""
    if isinstance(cond, np.ndarray) and cond.ndim > 0:
        return np.where(cond, then, els)
    return then if bool(cond) else els


def runtime_namespace() -> Dict[str, object]:
    """Globals every compiled kernel executes under."""
    from . import interpreter as _interp

    return {
        "np": np,
        "InterpreterError": InterpreterError,
        "_ReturnSignal": _interp._ReturnSignal,
        "_c_div": _interp._c_div,
        "_c_mod": _interp._c_mod,
        "_as_int": _interp._as_int,
        "_as_float": _interp._as_float,
        "_scalar": _rt_scalar,
        "_ternary": _rt_ternary,
        "_ONES": np.ones((), dtype=bool),
    }


def _mangle(name: str) -> str:
    return "v_" + name


class _Lowerer:
    """Single-use lowering pass over one kernel definition."""

    def __init__(self, kernel: ast.KernelDef) -> None:
        self.kernel = kernel
        self.lines: List[str] = []
        self.tmp = 0
        #: static definedness of user variables: "def" (assigned on every
        #: path) or "maybe" (assigned on some path); absent = never.
        self.scope: Dict[str, str] = {p.name: "def" for p in kernel.params}
        self.shared_names: Set[str] = set()

    # -------------------------------------------------------------- emission

    def emit(self, indent: int, line: str) -> None:
        if len(self.lines) >= MAX_LINES:
            raise LoweringError(
                f"kernel {self.kernel.name!r}: generated source exceeds "
                f"{MAX_LINES} lines"
            )
        self.lines.append("    " * indent + line)

    def temp(self, prefix: str = "_t") -> str:
        self.tmp += 1
        return f"{prefix}{self.tmp}"

    def lower(self) -> str:
        self.emit(0, "def _compiled_kernel(ex, _m0):")
        self.emit(1, "_env = ex.env")
        self.emit(1, "_tix = ex.tidx['x']; _tiy = ex.tidx['y']; _tiz = ex.tidx['z']")
        self.emit(1, "_bix = ex.bidx['x']; _biy = ex.bidx['y']; _biz = ex.bidx['z']")
        self.emit(1, "_bdx = ex.bdim['x']; _bdy = ex.bdim['y']; _bdz = ex.bdim['z']")
        self.emit(1, "_gdx = ex.gdim['x']; _gdy = ex.gdim['y']; _gdz = ex.gdim['z']")
        for param in self.kernel.params:
            self.emit(1, f"{_mangle(param.name)} = _env[{param.name!r}]")
        body = self.kernel.body.stmts
        if not body:
            self.emit(1, "pass")
        for stmt in body:
            self.stmt(stmt, 1, "_m0", False)
        return "\n".join(self.lines) + "\n"

    # ----------------------------------------------------------- expressions

    def expr(self, node: ast.Expr, mask: str) -> str:
        """Lower one expression to a Python expression string.

        ``mask`` is the variable (or ``_ONES``) holding the active-thread
        mask under which the expression is evaluated — it only reaches
        array accesses, where it drives validation and counters.
        """
        if isinstance(node, ast.IntLit):
            return repr(node.value)
        if isinstance(node, ast.FloatLit):
            if not math.isfinite(node.value):
                raise LoweringError("non-finite float literal")
            return repr(node.value)
        if isinstance(node, ast.BoolLit):
            return "True" if node.value else "False"
        if isinstance(node, ast.Ident):
            name = node.name
            if self.scope.get(name) == "def":
                return _mangle(name)
            raise LoweringError(
                f"read of conditionally-defined or unknown name {name!r}"
            )
        if isinstance(node, ast.Member):
            if not isinstance(node.obj, ast.Ident):
                raise LoweringError("unsupported member access")
            local = _GEOMETRY.get((node.obj.name, node.field_name))
            if local is None:
                raise LoweringError(
                    f"unknown builtin member {node.obj.name}.{node.field_name}"
                )
            return local
        if isinstance(node, ast.Index):
            name = node.array_name
            if name is None:
                raise LoweringError("array base must be a name")
            idxs = ", ".join(self.expr(e, mask) for e in node.indices)
            return f"ex.load_values({name!r}, [{idxs}], {mask})"
        if isinstance(node, ast.Call):
            return self.call(node, mask)
        if isinstance(node, ast.Unary):
            operand = self.expr(node.operand, mask)
            if node.op == "-":
                return f"(-({operand}))"
            if node.op == "!":
                return f"np.logical_not({operand})"
            return f"({operand})"
        if isinstance(node, ast.Binary):
            return self.binop(
                node.op, self.expr(node.lhs, mask), self.expr(node.rhs, mask)
            )
        if isinstance(node, ast.Ternary):
            cond = self.expr(node.cond, mask)
            then = self.expr(node.then, mask)
            els = self.expr(node.els, mask)
            return f"_ternary({cond}, {then}, {els})"
        raise LoweringError(f"unsupported expression {type(node).__name__}")

    def binop(self, op: str, lhs: str, rhs: str) -> str:
        if op in _ARITH_OPS:
            return f"(({lhs}) {op} ({rhs}))"
        if op == "/":
            return f"_c_div({lhs}, {rhs})"
        if op == "%":
            return f"_c_mod({lhs}, {rhs})"
        if op == "&&":
            return f"np.logical_and({lhs}, {rhs})"
        if op == "||":
            return f"np.logical_or({lhs}, {rhs})"
        raise LoweringError(f"unsupported operator {op!r}")

    def call(self, node: ast.Call, mask: str) -> str:
        args = [self.expr(a, mask) for a in node.args]
        if node.func in _MATH1_CODE:
            if len(args) != 1:
                raise LoweringError(f"{node.func} expects 1 argument")
            return f"{_MATH1_CODE[node.func]}({args[0]})"
        if node.func in _MATH2_CODE:
            if len(args) != 2:
                raise LoweringError(f"{node.func} expects 2 arguments")
            return f"{_MATH2_CODE[node.func]}({args[0]}, {args[1]})"
        raise LoweringError(f"unknown kernel function {node.func!r}")

    def scalar_expr(self, node: ast.Expr, what: str) -> str:
        """Thread-invariant context: fresh all-true mask, runtime guard."""
        return f"_scalar({self.expr(node, '_ONES')}, {what!r})"

    # ------------------------------------------------------------ statements

    def stmt(self, node: ast.Stmt, ind: int, mask: str, vector: bool) -> None:
        if isinstance(node, ast.VarDecl):
            self.decl(node, ind, mask)
        elif isinstance(node, ast.Assign):
            self.assign(node, ind, mask, vector)
        elif isinstance(node, ast.If):
            self.if_stmt(node, ind, mask, vector)
        elif isinstance(node, ast.For):
            self.for_stmt(node, ind, mask, vector)
        elif isinstance(node, ast.While):
            self.while_stmt(node, ind, mask, vector)
        elif isinstance(node, ast.SyncThreads):
            self.emit(ind, "if ex.counters is not None:")
            self.emit(ind + 1, "ex.counters.syncthreads += ex._blocks_covered")
        elif isinstance(node, ast.ExprStmt):
            self.emit(ind, self.expr(node.expr, mask))
        elif isinstance(node, ast.Return):
            self.emit(ind, "raise _ReturnSignal()")
        elif isinstance(node, ast.Block):
            for s in node.stmts:
                self.stmt(s, ind, mask, vector)
        else:
            raise LoweringError(f"unsupported statement {type(node).__name__}")

    def decl(self, node: ast.VarDecl, ind: int, mask: str) -> None:
        if node.is_shared:
            dims = ", ".join(
                f"int({self.scalar_expr(d, 'shared array dimension')})"
                for d in node.array_dims
            )
            self.emit(
                ind,
                f"ex.decl_shared({node.name!r}, [{dims}], {node.type.base!r})",
            )
            self.shared_names.add(node.name)
            return
        if node.array_dims:
            raise LoweringError(
                f"local array {node.name!r} without __shared__ is unsupported"
            )
        target = _mangle(node.name)
        if node.init is None:
            value = "0" if node.type.base == "int" else "0.0"
        else:
            value = self.expr(node.init, mask)
            if node.type.base == "int":
                value = f"_as_int({value})"
            elif node.type.base in ("double", "float"):
                value = f"_as_float({value})"
        # declarations assign unconditionally, exactly like _exec_decl
        self.emit(ind, f"{target} = {value}")
        self.scope[node.name] = "def"

    def assign(self, node: ast.Assign, ind: int, mask: str, vector: bool) -> None:
        tmp = self.temp()
        self.emit(ind, f"{tmp} = {self.expr(node.value, mask)}")
        target = node.target
        if isinstance(target, ast.Ident):
            name = target.name
            if name in self.shared_names:
                raise LoweringError(f"scalar store to shared array {name!r}")
            if node.op != "=":
                if self.scope.get(name) != "def":
                    raise LoweringError(
                        f"compound assignment to undefined name {name!r}"
                    )
                self.emit(
                    ind, f"{tmp} = {self.binop(node.op[0], _mangle(name), tmp)}"
                )
            state = self.scope.get(name)
            if not vector:
                self.emit(ind, f"{_mangle(name)} = {tmp}")
            elif state == "def":
                # _store_scalar: inactive threads keep their old value
                self.emit(
                    ind,
                    f"{_mangle(name)} = np.where({mask}, {tmp}, {_mangle(name)})",
                )
            elif state is None:
                # never assigned on any path: env.get() would yield 0
                self.emit(ind, f"{_mangle(name)} = np.where({mask}, {tmp}, 0)")
            else:
                raise LoweringError(
                    f"masked store to conditionally-defined name {name!r}"
                )
            self.scope[name] = "def"
            return
        if isinstance(target, ast.Index):
            name = target.array_name
            if name is None:
                raise LoweringError("array base must be a name")

            def idx_code() -> str:
                # index expressions are evaluated once per access; compound
                # assignment therefore evaluates them twice (load + store),
                # exactly like _exec_assign -> _eval + _store_array
                return ", ".join(self.expr(e, mask) for e in target.indices)

            if node.op != "=":
                cur = self.temp()
                self.emit(
                    ind,
                    f"{cur} = ex.load_values({name!r}, [{idx_code()}], {mask})",
                )
                self.emit(ind, f"{tmp} = {self.binop(node.op[0], cur, tmp)}")
            self.emit(
                ind,
                f"ex.store_values({name!r}, [{idx_code()}], {tmp}, {mask})",
            )
            return
        raise LoweringError("invalid assignment target")

    def if_stmt(self, node: ast.If, ind: int, mask: str, vector: bool) -> None:
        cond = self.temp("_c")
        self.emit(ind, f"{cond} = {self.expr(node.cond, mask)}")
        self.emit(ind, f"if isinstance({cond}, np.ndarray) and {cond}.ndim > 0:")
        before = dict(self.scope)
        # --- vector condition: mask split, body under np.any guards -------
        vmask = self.temp("_m")
        self.emit(ind + 1, f"{vmask} = np.logical_and({mask}, {cond})")
        self.emit(ind + 1, "if ex.counters is not None:")
        self.emit(
            ind + 2,
            f"if np.any({vmask}) and "
            f"np.any(np.logical_and({mask}, np.logical_not({cond}))):",
        )
        self.emit(ind + 3, "ex.counters.branch_divergence += 1")
        self.emit(ind + 1, f"if np.any({vmask}):")
        self.block_body(node.then, ind + 2, vmask, True)
        v_then = self.scope
        self.scope = dict(before)
        if node.els is not None:
            emask = self.temp("_m")
            self.emit(
                ind + 1,
                f"{emask} = np.logical_and({mask}, np.logical_not({cond}))",
            )
            self.emit(ind + 1, f"if np.any({emask}):")
            self.block_body(node.els, ind + 2, emask, True)
        v_else = self.scope
        # --- scalar condition: plain Python branch ------------------------
        self.scope = dict(before)
        self.emit(ind, "else:")
        self.emit(ind + 1, f"if bool({cond}):")
        self.block_body(node.then, ind + 2, mask, vector)
        s_then = self.scope
        self.scope = dict(before)
        if node.els is not None:
            self.emit(ind + 1, "else:")
            self.block_body(node.els, ind + 2, mask, vector)
        s_else = self.scope
        self.scope = self.merge_scopes(before, [v_then, v_else, s_then, s_else])

    def block_body(self, block: ast.Block, ind: int, mask: str, vector: bool) -> None:
        if not block.stmts:
            self.emit(ind, "pass")
            return
        for s in block.stmts:
            self.stmt(s, ind, mask, vector)

    def merge_scopes(
        self, before: Dict[str, str], branches: List[Dict[str, str]]
    ) -> Dict[str, str]:
        """Join definedness across branch outcomes (see class docstring)."""
        merged = dict(before)
        names: Set[str] = set()
        for b in branches:
            names.update(b)
        for name in names:
            if before.get(name) == "def":
                merged[name] = "def"
            elif all(b.get(name) == "def" for b in branches):
                merged[name] = "def"
            elif any(b.get(name) for b in branches):
                merged[name] = "maybe"
        return merged

    def for_stmt(self, node: ast.For, ind: int, mask: str, vector: bool) -> None:
        start = self.temp("_f")
        bound = self.temp("_f")
        step = self.temp("_f")
        end = self.temp("_f")
        var = self.temp("_f")
        self.emit(ind, f"{start} = {self.scalar_expr(node.start, 'loop start')}")
        self.emit(ind, f"{bound} = {self.scalar_expr(node.bound, 'loop bound')}")
        self.emit(ind, f"{step} = {self.scalar_expr(node.step, 'loop step')}")
        self.emit(ind, f"if {step} <= 0:")
        self.emit(ind + 1, "raise InterpreterError('loop step must be positive')")
        if node.cmp == "<=":
            self.emit(ind, f"{end} = {bound} + 1")
        else:
            self.emit(ind, f"{end} = {bound}")
        before = dict(self.scope)
        prior = self.scope.get(node.var)
        saved = None
        if prior == "def":
            saved = self.temp("_s")
            self.emit(ind, f"{saved} = {_mangle(node.var)}")
        elif prior == "maybe":
            raise LoweringError(
                f"loop variable {node.var!r} shadows a conditionally-defined name"
            )
        self.emit(ind, f"{var} = {start}")
        self.emit(ind, f"while {var} < {end}:")
        self.scope[node.var] = "def"
        self.emit(ind + 1, f"{_mangle(node.var)} = int({var})")
        self.block_body(node.body, ind + 1, mask, vector)
        self.emit(ind + 1, f"{var} = {var} + {step}")
        body_scope = self.scope
        # the loop may run zero times: body definitions are conditional,
        # and the loop variable reverts to its pre-loop state (_MISSING
        # protocol of _exec_for)
        self.scope = self.merge_scopes(before, [body_scope, dict(before)])
        if saved is not None:
            self.emit(ind, f"{_mangle(node.var)} = {saved}")
            self.scope[node.var] = "def"
        else:
            self.scope.pop(node.var, None)

    def while_stmt(self, node: ast.While, ind: int, mask: str, vector: bool) -> None:
        count = self.temp("_w")
        cond = self.temp("_c")
        self.emit(ind, f"{count} = 0")
        self.emit(ind, "while True:")
        before = dict(self.scope)
        self.emit(ind + 1, f"{cond} = {self.expr(node.cond, mask)}")
        self.emit(
            ind + 1, f"if isinstance({cond}, np.ndarray) and {cond}.ndim > 0:"
        )
        self.emit(
            ind + 2,
            "raise InterpreterError('thread-dependent while condition unsupported')",
        )
        self.emit(ind + 1, f"if not bool({cond}):")
        self.emit(ind + 2, "break")
        self.block_body(node.body, ind + 1, mask, vector)
        self.emit(ind + 1, f"{count} = {count} + 1")
        self.emit(ind + 1, f"if {count} > 10000000:")
        self.emit(
            ind + 2,
            "raise InterpreterError('while loop exceeded iteration limit')",
        )
        self.scope = self.merge_scopes(before, [self.scope, dict(before)])


def lower_kernel(kernel: ast.KernelDef) -> str:
    """Lower ``kernel`` to Python source defining ``_compiled_kernel``.

    The lowered source is shape-independent: the same function executes
    on the vectorized and the batched lattice, because all shape-specific
    state (thread coordinates, block axis, shared-tile stacking) lives on
    the executor it closes over.

    Raises :class:`LoweringError` for constructs the lowerer cannot
    compile faithfully; callers fall back to tree-walking interpretation.
    """
    return _Lowerer(kernel).lower()

"""Compile CudaLite kernels once, execute them many times.

This is the ``compiled`` execution mode's engine: a kernel is lowered
(:mod:`repro.gpu.lowering`) into vectorized numpy Python source exactly
once, ``compile()``d in-process, and cached two ways:

* an in-memory code cache keyed by kernel content hash — repeated
  launches of the same kernel (the common case: verification replays,
  fitness sweeps, multi-step host loops) pay zero lowering cost, and
  kernels that failed to lower are negatively cached so the fallback
  decision is also taken once;
* a persistent ``compiled_kernel`` namespace in :mod:`repro.store`
  (enabled whenever ``REPRO_STORE`` enables the store, which
  ``TransformConfig.applied_env`` exports during transforms) — warm runs
  skip lowering entirely.  Only *source* is persisted, version-salted
  like every other envelope, and recompiled on load.

The cache key is the SHA-256 of the kernel's canonical unparsed text, so
textually identical kernels share one compiled function across programs,
and any edit changes the address.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..cudalite import ast_nodes as ast
from ..errors import LoweringError
from ..observability.metrics import get_registry
from ..store.keys import kernel_fingerprint
from .lowering import LOWERING_VERSION, lower_kernel, runtime_namespace

__all__ = [
    "CompiledKernel",
    "CompilerStats",
    "compile_kernel_source",
    "get_compiled_kernel",
    "kernel_fingerprint",
    "note_fallback",
    "reset_code_cache",
    "stats",
]

logger = logging.getLogger(__name__)

#: signature of a compiled kernel: (executor, initial mask) -> None
CompiledFn = Callable[[object, object], None]


@dataclass(frozen=True)
class CompiledKernel:
    """One lowered + compiled kernel."""

    kernel: str
    fingerprint: str
    source: str
    fn: CompiledFn


@dataclass
class CompilerStats:
    """Cache behaviour of the in-process compiler (observability)."""

    lowered: int = 0
    memory_hits: int = 0
    store_hits: int = 0
    fallbacks: int = 0
    fallback_hits: int = 0
    #: kernel name -> why it bypassed compiled execution (first reason
    #: wins); surfaced in ``run.json`` under ``compiled_kernels`` so a
    #: silent per-kernel fallback always leaves a trace
    fallback_reasons: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "lowered": self.lowered,
            "memory_hits": self.memory_hits,
            "store_hits": self.store_hits,
            "fallbacks": self.fallbacks,
            "fallback_hits": self.fallback_hits,
            "fallback_reasons": dict(sorted(self.fallback_reasons.items())),
        }


_LOCK = threading.Lock()
#: fingerprint -> CompiledKernel, or None for negatively-cached fallbacks
_CODE_CACHE: Dict[str, Optional[CompiledKernel]] = {}
_STATS = CompilerStats()


def note_fallback(kernel_name: str, reason: str, detail: str = "") -> None:
    """Record why ``kernel_name`` bypassed compiled execution.

    Deduplicated by kernel name (the first reason wins), so multi-launch
    kernels record once.  ``reason`` is a low-cardinality label
    (``lowering`` | ``unbatchable_shared`` | ``detect_races``) used for
    the metrics counter; ``detail`` carries the specific diagnostic.
    """
    with _LOCK:
        if kernel_name in _STATS.fallback_reasons:
            return
        _STATS.fallback_reasons[kernel_name] = (
            f"{reason}: {detail}" if detail else reason
        )
    get_registry().inc("compiled_fallbacks_total", reason=reason)


def compile_kernel_source(
    source: str, kernel_name: str, fingerprint: str
) -> CompiledKernel:
    """``compile()`` lowered source into an executable kernel closure."""
    namespace = runtime_namespace()
    code = compile(source, f"<compiled kernel {kernel_name}>", "exec")
    exec(code, namespace)  # noqa: S102 - executing our own generated source
    return CompiledKernel(
        kernel=kernel_name,
        fingerprint=fingerprint,
        source=source,
        fn=namespace["_compiled_kernel"],
    )


def _store_and_key(fingerprint: str):
    """Best-effort handle on the persistent store (None when disabled)."""
    try:
        from ..store import keys
        from ..store.artifact_store import (
            default_store_root,
            open_store,
            store_enabled_from_env,
        )

        if not store_enabled_from_env():
            return None, None
        store = open_store(default_store_root())
        return store, keys.compiled_kernel_key(fingerprint, LOWERING_VERSION)
    except Exception:  # store trouble must never break execution
        logger.debug("compiled-kernel store unavailable", exc_info=True)
        return None, None


def get_compiled_kernel(kernel: ast.KernelDef, shape: str = "") -> Optional[CompiledFn]:
    """Return the compiled function for ``kernel``, or None to fall back.

    The lowered source is shape-independent (``shape`` is accepted for
    symmetry with the executor's dispatch but does not key the cache).
    Lowering failures are negatively cached; every path through here is
    safe to call from concurrent evaluator threads.
    """
    fingerprint = kernel_fingerprint(kernel)
    with _LOCK:
        if fingerprint in _CODE_CACHE:
            cached = _CODE_CACHE[fingerprint]
            if cached is None:
                _STATS.fallback_hits += 1
                return None
            _STATS.memory_hits += 1
            return cached.fn
    store, key = _store_and_key(fingerprint)
    compiled: Optional[CompiledKernel] = None
    if store is not None:
        from ..store.stage_cache import load_compiled_kernel

        source = load_compiled_kernel(store, key, LOWERING_VERSION)
        if source is not None:
            try:
                compiled = compile_kernel_source(source, kernel.name, fingerprint)
            except Exception:
                logger.debug(
                    "stored compiled kernel %s failed to recompile; relowering",
                    kernel.name,
                    exc_info=True,
                )
            else:
                with _LOCK:
                    _STATS.store_hits += 1
                    _CODE_CACHE[fingerprint] = compiled
                return compiled.fn
    try:
        source = lower_kernel(kernel)
        compiled = compile_kernel_source(source, kernel.name, fingerprint)
    except LoweringError as exc:
        logger.debug("kernel %s not compiled: %s", kernel.name, exc)
        with _LOCK:
            _STATS.fallbacks += 1
            _CODE_CACHE[fingerprint] = None
        note_fallback(kernel.name, "lowering", str(exc))
        return None
    with _LOCK:
        _STATS.lowered += 1
        _CODE_CACHE[fingerprint] = compiled
    if store is not None:
        from ..store.stage_cache import save_compiled_kernel

        try:
            save_compiled_kernel(
                store, key, kernel.name, compiled.source, LOWERING_VERSION
            )
        except Exception:  # best-effort persistence
            logger.debug("compiled kernel %s not persisted", kernel.name, exc_info=True)
    return compiled.fn


def stats() -> CompilerStats:
    """Snapshot of the in-process compiler's cache counters."""
    with _LOCK:
        return CompilerStats(**_STATS.as_dict())


def reset_code_cache() -> None:
    """Drop the in-memory code cache and stats (tests / benchmarks)."""
    with _LOCK:
        _CODE_CACHE.clear()
        _STATS.lowered = 0
        _STATS.memory_hits = 0
        _STATS.store_hits = 0
        _STATS.fallbacks = 0
        _STATS.fallback_hits = 0
        _STATS.fallback_reasons.clear()

"""Structured log output: ``REPRO_LOG_FORMAT=json``.

The pipeline's diagnostics go through stdlib :mod:`logging`; by default
they render as the familiar ``LEVEL logger: message`` lines.  Setting
``REPRO_LOG_FORMAT=json`` (or ``--log-format json`` on the CLIs) swaps
the formatter for :class:`JsonLogFormatter`, which emits one JSON object
per line with trace/span correlation fields:

* ``trace_id`` — one id per process-wide tracer, so every log line of a
  run shares a value that also appears nowhere else;
* ``span_id`` — the id of the span open where the record was emitted
  (``null`` outside any span or with telemetry disabled), joining log
  lines to ``trace.json`` spans;
* ``stage`` — present on pipeline-stage records (the framework passes it
  via ``extra``), so a log pipeline can group by stage without parsing
  messages.

The formatter never throws on exotic records: unserializable extras are
stringified, and exception info renders into an ``exc`` field.
"""

from __future__ import annotations

import json
import logging
import os
import time
from typing import Optional

from .tracing import current_span_id, current_trace_id

__all__ = [
    "ENV_LOG_FORMAT",
    "JsonLogFormatter",
    "configure_logging",
    "log_format_from_env",
]

ENV_LOG_FORMAT = "REPRO_LOG_FORMAT"

TEXT_FORMAT = "%(levelname)s %(name)s: %(message)s"

#: record attributes every LogRecord has — anything else came in via
#: ``extra`` and is forwarded into the JSON object
_STANDARD_ATTRS = frozenset(
    vars(
        logging.LogRecord("x", logging.INFO, "x", 0, "x", None, None)
    )
) | {"message", "asctime", "taskName"}


def log_format_from_env(default: str = "text") -> str:
    """The configured log format: ``json`` or ``text``."""
    raw = (os.environ.get(ENV_LOG_FORMAT) or "").strip().lower()
    return "json" if raw == "json" else default


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log record, with trace/span correlation."""

    def format(self, record: logging.LogRecord) -> str:
        data = {
            "ts": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.localtime(record.created)
            )
            + f".{int(record.msecs):03d}",
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
            "trace_id": current_trace_id(),
            "span_id": current_span_id(),
        }
        for key, value in vars(record).items():
            if key in _STANDARD_ATTRS or key in data:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            data[key] = value
        if record.exc_info:
            data["exc"] = self.formatException(record.exc_info)
        return json.dumps(data, sort_keys=True, default=str)


def configure_logging(
    level: str = "warning", fmt: Optional[str] = None
) -> None:
    """Root-logger setup for the CLIs: level plus text/json formatter.

    ``fmt=None`` resolves from ``REPRO_LOG_FORMAT`` (default ``text``).
    Replaces existing root handlers so re-invocation (tests, embedding)
    is idempotent.
    """
    resolved = fmt or log_format_from_env()
    handler = logging.StreamHandler()
    handler.setFormatter(
        JsonLogFormatter() if resolved == "json"
        else logging.Formatter(TEXT_FORMAT)
    )
    logging.basicConfig(
        level=getattr(logging, level.upper(), logging.WARNING),
        handlers=[handler],
        force=True,
    )

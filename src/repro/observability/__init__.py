"""End-to-end observability for the transformation pipeline.

Five cooperating pieces, all zero-dependency and all behind one global
switch (``REPRO_TELEMETRY`` / :func:`set_telemetry_enabled`):

* :mod:`~repro.observability.metrics` — a thread-safe, process-pool-
  mergeable registry of counters / gauges / histograms with Prometheus
  and JSON exporters;
* :mod:`~repro.observability.tracing` — hierarchical spans exported as a
  Chrome trace-event file (Perfetto-loadable ``trace.json``);
* :mod:`~repro.observability.hwcounters` — per-launch interpreter
  counters (global/shared loads & stores, ``__syncthreads()``, branch
  divergence);
* :mod:`~repro.observability.search_telemetry` — the GGA's
  per-generation ``search_telemetry.jsonl`` record;
* :mod:`~repro.observability.runinfo` /
  :mod:`~repro.observability.model_validation` — the ``run.json``
  manifest and the counters-vs-perf-model validation report.
"""

from .hwcounters import (
    MODE_INVARIANT_FIELDS,
    KernelCounters,
    aggregate_counters,
    counters_signature,
)
from .metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    reset_registry,
)
from .model_validation import ModelValidationReport, validate_model
from .runinfo import build_run_manifest, env_knobs, git_sha, write_run_manifest
from .runtime import (
    ENV_TELEMETRY,
    set_telemetry_enabled,
    telemetry,
    telemetry_enabled,
    telemetry_enabled_from_env,
)
from .search_telemetry import (
    read_jsonl,
    search_telemetry_rows,
    write_jsonl,
)
from .tracing import SpanRecord, Tracer, get_tracer, reset_tracer, span

__all__ = [
    "ENV_TELEMETRY",
    "KernelCounters",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ModelValidationReport",
    "SpanRecord",
    "Tracer",
    "MODE_INVARIANT_FIELDS",
    "aggregate_counters",
    "counters_signature",
    "build_run_manifest",
    "env_knobs",
    "get_registry",
    "get_tracer",
    "git_sha",
    "read_jsonl",
    "reset_registry",
    "reset_tracer",
    "search_telemetry_rows",
    "set_telemetry_enabled",
    "span",
    "telemetry",
    "telemetry_enabled",
    "telemetry_enabled_from_env",
    "validate_model",
    "write_jsonl",
    "write_run_manifest",
]

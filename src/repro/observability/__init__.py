"""End-to-end observability for the transformation pipeline.

Five cooperating pieces, all zero-dependency and all behind one global
switch (``REPRO_TELEMETRY`` / :func:`set_telemetry_enabled`):

* :mod:`~repro.observability.metrics` — a thread-safe, process-pool-
  mergeable registry of counters / gauges / histograms with Prometheus
  and JSON exporters;
* :mod:`~repro.observability.tracing` — hierarchical spans exported as a
  Chrome trace-event file (Perfetto-loadable ``trace.json``);
* :mod:`~repro.observability.hwcounters` — per-launch interpreter
  counters (global/shared loads & stores, ``__syncthreads()``, branch
  divergence);
* :mod:`~repro.observability.search_telemetry` — the GGA's
  per-generation ``search_telemetry.jsonl`` record;
* :mod:`~repro.observability.runinfo` /
  :mod:`~repro.observability.model_validation` — the ``run.json``
  manifest and the counters-vs-perf-model validation report.

On top of the per-run layer sits the *cross-run* layer (PR 8):

* :mod:`~repro.observability.ledger` — the run ledger: one compact
  record per run appended into the artifact store, with a query API;
* :mod:`~repro.observability.trace_analytics` — critical-path
  extraction, per-name self-time rollups and a text waterfall;
* :mod:`~repro.observability.regress` — the regression sentinel's
  comparison engine (ledger records and ``BENCH_*.json`` floors);
* :mod:`~repro.observability.report_html` — the self-contained HTML run
  report;
* :mod:`~repro.observability.logfmt` — structured JSON log output with
  trace/span correlation (``REPRO_LOG_FORMAT=json``);
* :mod:`~repro.observability.cli` — the ``repro-obs`` command
  (``list`` / ``show`` / ``diff`` / ``regress`` / ``report``).
"""

from .hwcounters import (
    MODE_INVARIANT_FIELDS,
    KernelCounters,
    aggregate_counters,
    counters_signature,
)
from .ledger import (
    LEDGER_SCHEMA,
    RUN_LEDGER_NAMESPACE,
    RunLedger,
    append_record,
    build_fuzz_record,
    build_transform_record,
)
from .logfmt import ENV_LOG_FORMAT, JsonLogFormatter, configure_logging
from .metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    reset_registry,
)
from .model_validation import ModelValidationReport, validate_model
from .regress import (
    Finding,
    compare_bench_records,
    compare_ledger_records,
)
from .runinfo import build_run_manifest, env_knobs, git_sha, write_run_manifest
from .runtime import (
    ENV_TELEMETRY,
    set_telemetry_enabled,
    telemetry,
    telemetry_enabled,
    telemetry_enabled_from_env,
)
from .search_telemetry import (
    read_jsonl,
    search_telemetry_rows,
    write_jsonl,
)
from .trace_analytics import (
    SpanStat,
    critical_path,
    render_waterfall,
    rollup,
    summarize_spans,
)
from .tracing import (
    SpanRecord,
    Tracer,
    current_span_id,
    current_trace_id,
    get_tracer,
    reset_tracer,
    span,
)

__all__ = [
    "ENV_LOG_FORMAT",
    "ENV_TELEMETRY",
    "Finding",
    "JsonLogFormatter",
    "KernelCounters",
    "LEDGER_SCHEMA",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ModelValidationReport",
    "RUN_LEDGER_NAMESPACE",
    "RunLedger",
    "SpanRecord",
    "SpanStat",
    "Tracer",
    "MODE_INVARIANT_FIELDS",
    "aggregate_counters",
    "append_record",
    "build_fuzz_record",
    "build_run_manifest",
    "build_transform_record",
    "compare_bench_records",
    "compare_ledger_records",
    "configure_logging",
    "counters_signature",
    "critical_path",
    "current_span_id",
    "current_trace_id",
    "env_knobs",
    "get_registry",
    "get_tracer",
    "git_sha",
    "read_jsonl",
    "render_waterfall",
    "reset_registry",
    "reset_tracer",
    "rollup",
    "search_telemetry_rows",
    "set_telemetry_enabled",
    "span",
    "summarize_spans",
    "telemetry",
    "telemetry_enabled",
    "telemetry_enabled_from_env",
    "validate_model",
    "write_jsonl",
    "write_run_manifest",
]

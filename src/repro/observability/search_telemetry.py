"""Search telemetry: the GGA's machine-readable trajectory.

The search stage's prose report ("converged at generation 12") is for
humans; this module persists the underlying per-generation record as
``search_telemetry.jsonl`` — one JSON object per line, one line per GGA
generation, plus a trailing summary row — so convergence behaviour,
penalty pressure, cache effectiveness and degradation counts can be
plotted and regression-tracked across runs.

Row schema (``type == "generation"``)::

    generation, best_fitness, best_feasible_fitness, mean_fitness,
    std_fitness, feasible_count, penalty_activations, fissions,
    cache_hits, cache_lookups, evaluations, worker_failures,
    eval_timeouts, fallback_evaluations, island, surrogate_candidates,
    surrogate_admitted, surrogate_rank_correlation, elapsed_s,
    migrants_in

The cumulative evaluator counters (``cache_hits`` …) are sampled at the
end of each generation, so per-generation deltas are recoverable by
differencing consecutive rows.  In island mode every island emits its
own generation sequence (rows tagged with an ``island`` index, each
sequence consecutive from 0), and dropped migration payloads appear as
``type == "migration_note"`` rows — the search-layer analogue of
codegen's DemotionRecord.  ``surrogate_rank_correlation`` is the
per-generation Spearman rho between the analytic-model-only surrogate
scores and the exact penalized fitness of the admitted offspring
(``null`` when the pre-filter is off or the sample is degenerate).
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional


def generation_row(stats: object) -> Dict[str, object]:
    """One JSONL row from a :class:`~repro.search.gga.GenerationStats`."""

    def clean(value: float) -> Optional[float]:
        return None if isinstance(value, float) and math.isnan(value) else value

    return {
        "type": "generation",
        "generation": stats.generation,
        "best_fitness": clean(stats.best_fitness),
        "best_feasible_fitness": clean(stats.best_feasible_fitness),
        "mean_fitness": clean(stats.mean_fitness),
        "std_fitness": clean(stats.std_fitness),
        "feasible_count": stats.feasible_count,
        "penalty_activations": stats.penalty_activations,
        "fissions": stats.fissions,
        "cache_hits": stats.cache_hits,
        "cache_lookups": stats.cache_lookups,
        "evaluations": stats.evaluations,
        "worker_failures": stats.worker_failures,
        "eval_timeouts": stats.eval_timeouts,
        "fallback_evaluations": stats.fallback_evaluations,
        "island": getattr(stats, "island", 0),
        "surrogate_candidates": getattr(stats, "surrogate_candidates", 0),
        "surrogate_admitted": getattr(stats, "surrogate_admitted", 0),
        "surrogate_rank_correlation": clean(
            getattr(stats, "surrogate_rank_correlation", float("nan"))
        ),
        "elapsed_s": getattr(stats, "elapsed_s", 0.0),
        "migrants_in": getattr(stats, "migrants_in", 0),
    }


def search_summary_row(result: object, cache_invalid: int = 0) -> Dict[str, object]:
    """Trailing summary row from a :class:`~repro.search.gga.SearchResult`."""
    return {
        "type": "search_summary",
        "generations_run": result.generations_run,
        "converged_at": result.converged_at,
        "best_fitness": result.best_fitness,
        "projected_time_s": result.projected_time_s,
        "evaluations": result.evaluations,
        "cache_hits": result.cache_hits,
        "fitness_lookups": result.fitness_lookups,
        "cache_hit_rate": result.cache_hit_rate,
        "cache_poisoned_reads": cache_invalid,
        "avg_fissions_per_generation": result.avg_fissions_per_generation,
        "fused_group_count": result.fused_group_count,
        "new_kernel_count": result.new_kernel_count,
        "islands": getattr(result, "islands", 1),
        "migrations_received": getattr(result, "migrations_received", 0),
        "migrations_dropped": getattr(result, "migrations_dropped", 0),
        "surrogate_skipped": getattr(result, "surrogate_skipped", 0),
        "surrogate_rank_correlation": _clean_nan(
            getattr(result, "surrogate_rank_correlation", float("nan"))
        ),
        "wall_time_s": getattr(result, "wall_time_s", 0.0),
    }


def _clean_nan(value: float) -> Optional[float]:
    return None if isinstance(value, float) and math.isnan(value) else value


def search_telemetry_rows(
    result: object, cache_invalid: int = 0
) -> List[Dict[str, object]]:
    """Full JSONL payload for one search: generation rows + migration
    notes (island mode, dropped payloads only) + summary."""
    rows = [generation_row(stats) for stats in result.history]
    rows.extend(dict(note) for note in getattr(result, "migration_notes", []))
    rows.append(search_summary_row(result, cache_invalid=cache_invalid))
    return rows


def write_jsonl(path: str, rows: Iterable[Dict[str, object]], append: bool = False) -> None:
    """Write (or append) rows as JSON Lines."""
    with open(path, "a" if append else "w") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True))
            fh.write("\n")


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a JSONL file (schema checks, tests)."""
    rows = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows

"""Global on/off switch for the observability layer.

Every recording primitive (metric increment, span, telemetry row) checks
one module-level boolean before doing any work, so a disabled pipeline
run pays a single attribute load and branch per call site — the
"near-zero-overhead no-op path" the pipeline promises under
``--no-telemetry``.

The switch is resolved once at import from ``REPRO_TELEMETRY`` (default
enabled; ``0`` / ``false`` / ``off`` / ``no`` disable) and can be flipped
programmatically with :func:`set_telemetry_enabled` (the CLI's
``--no-telemetry`` flag, tests' overhead guard).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

ENV_TELEMETRY = "REPRO_TELEMETRY"

_FALSY = {"0", "false", "off", "no"}


def telemetry_enabled_from_env(default: bool = True) -> bool:
    """Resolve the telemetry switch from the environment."""
    raw = os.environ.get(ENV_TELEMETRY)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


_enabled: bool = telemetry_enabled_from_env()


def telemetry_enabled() -> bool:
    """Is the observability layer recording?"""
    return _enabled


def set_telemetry_enabled(enabled: bool) -> None:
    """Flip the global recording switch (CLI ``--no-telemetry``, tests)."""
    global _enabled
    _enabled = bool(enabled)


@contextmanager
def telemetry(enabled: bool) -> Iterator[None]:
    """Scoped override of the switch (restores the previous value)."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    try:
        yield
    finally:
        _enabled = previous

"""Model validation: interpreter counters vs. perf-model projections.

The analytic performance model (:mod:`repro.gpu.perfmodel`) *projects*
bytes moved and flops per kernel; the interpreter's hardware-ish counters
(:mod:`repro.observability.hwcounters`) *measure* the accesses actually
executed.  This module lines the two up per executed kernel launch and
emits the comparison the tuning-strategy literature does with real
hardware counters — the data needed to decide whether a projected speedup
can be trusted.

The interesting quantity is the ratio ``projected_bytes /
measured_bytes``: the model charges cache/halo redundancy factors on top
of the raw access counts, so a ratio far below 1.0 means the model is
*under*-charging traffic for that kernel (its projected time is
optimistic), and a wildly large one means the redundancy model
over-penalizes it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class KernelValidation:
    """One launch: measured counters next to the model's projection."""

    index: int
    kernel: str
    measured: Dict[str, object]
    measured_global_bytes: int
    projected_bytes: float
    projected_flops: float
    projected_time_s: float
    occupancy: float
    limiter: str

    @property
    def bytes_ratio(self) -> Optional[float]:
        """projected / measured global traffic (None when unmeasurable)."""
        if self.measured_global_bytes <= 0:
            return None
        return self.projected_bytes / self.measured_global_bytes

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "kernel": self.kernel,
            "measured": self.measured,
            "measured_global_bytes": self.measured_global_bytes,
            "projected_bytes": self.projected_bytes,
            "projected_flops": self.projected_flops,
            "projected_time_s": self.projected_time_s,
            "occupancy": self.occupancy,
            "limiter": self.limiter,
            "bytes_ratio": self.bytes_ratio,
        }


@dataclass
class ModelValidationReport:
    """Per-launch validations plus aggregate agreement figures."""

    kernels: List[KernelValidation] = field(default_factory=list)
    #: launches the comparison could not cover (count mismatch, no counters)
    uncompared: int = 0

    @property
    def total_measured_bytes(self) -> int:
        return sum(k.measured_global_bytes for k in self.kernels)

    @property
    def total_projected_bytes(self) -> float:
        return sum(k.projected_bytes for k in self.kernels)

    @property
    def aggregate_bytes_ratio(self) -> Optional[float]:
        if self.total_measured_bytes <= 0:
            return None
        return self.total_projected_bytes / self.total_measured_bytes

    def as_dict(self) -> Dict[str, object]:
        return {
            "kernels": [k.as_dict() for k in self.kernels],
            "uncompared": self.uncompared,
            "total_measured_bytes": self.total_measured_bytes,
            "total_projected_bytes": self.total_projected_bytes,
            "aggregate_bytes_ratio": self.aggregate_bytes_ratio,
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def summary(self) -> str:
        lines = [
            f"model validation over {len(self.kernels)} kernel launches "
            f"({self.uncompared} uncompared)"
        ]
        for k in self.kernels:
            ratio = k.bytes_ratio
            ratio_s = f"{ratio:.2f}x" if ratio is not None else "n/a"
            lines.append(
                f"  [{k.index}] {k.kernel}: measured {k.measured_global_bytes} B "
                f"global, projected {k.projected_bytes:.0f} B "
                f"(ratio {ratio_s}, {k.limiter}-bound, occ {k.occupancy:.2f})"
            )
        agg = self.aggregate_bytes_ratio
        if agg is not None:
            lines.append(f"  aggregate projected/measured bytes: {agg:.2f}x")
        return "\n".join(lines)


def validate_model(
    launches: Sequence[object],
    projections: Sequence[object],
) -> ModelValidationReport:
    """Match counted launches against per-kernel projections by name.

    ``launches`` are :class:`~repro.gpu.interpreter.LaunchRecord` objects
    carrying ``counters`` (launches without counters are skipped and
    tallied as uncompared); ``projections`` are
    :class:`~repro.gpu.perfmodel.KernelProjection` objects, one per launch
    *site*.  A host time loop executes each site many times, so launches
    are matched to same-named projections round-robin: the N-th recorded
    launch of kernel ``k`` gets projection ``k[N mod sites(k)]``.
    Launches whose kernel has no projection are tallied as uncompared.
    """
    report = ModelValidationReport()
    by_name: Dict[str, List[object]] = {}
    for proj in projections:
        name = str(getattr(proj, "kernel_name", "?"))
        by_name.setdefault(name, []).append(proj)
    cursor: Dict[str, int] = {}
    for i, launch in enumerate(launches):
        counters = getattr(launch, "counters", None)
        if counters is None:
            report.uncompared += 1
            continue
        name = counters.kernel or str(getattr(launch, "kernel", "?"))
        candidates = by_name.get(name)
        if not candidates:
            report.uncompared += 1
            continue
        seen = cursor.get(name, 0)
        proj = candidates[seen % len(candidates)]
        cursor[name] = seen + 1
        report.kernels.append(
            KernelValidation(
                index=i,
                kernel=name,
                measured=counters.as_dict(),
                measured_global_bytes=counters.global_bytes,
                projected_bytes=float(proj.bytes_total),
                projected_flops=float(proj.flops),
                projected_time_s=float(proj.time_s),
                occupancy=float(proj.occupancy),
                limiter=str(proj.limiter),
            )
        )
    return report

"""Command-line front end (``repro-obs``): cross-run observability.

Query the run ledger, compare runs and gate CI on regressions::

    repro-obs list                          # recent ledger records
    repro-obs show latest                   # one record in full
    repro-obs diff prev latest              # stage times + store traffic
    repro-obs regress --threshold 1.5       # exit 3 on a slowdown
    repro-obs regress --bench-baseline BENCH_pr6.json \\
                      --bench-current /tmp/fresh.json
    repro-obs report out/ -o report.html    # self-contained HTML page

The ledger lives in the artifact store (``--store ROOT``, else
``REPRO_STORE``, else ``~/.cache/repro``).  Exit status: ``0`` ok, ``2``
on configuration/data errors, ``3`` when the regression sentinel fires.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..store.artifact_store import ArtifactStore, default_store_root
from .ledger import RunLedger
from .regress import (
    compare_bench_records,
    compare_ledger_records,
    render_findings,
)
from .report_html import write_report_html
from .trace_analytics import render_waterfall, spans_from_chrome_trace

EXIT_OK = 0
EXIT_ERROR = 2
EXIT_REGRESSION = 3


def _open_ledger(root: Optional[str]) -> RunLedger:
    return RunLedger(ArtifactStore(root if root else default_store_root()))


def _fmt_age(record: Dict[str, object]) -> str:
    return str(record.get("timestamp") or "?")


def _one_line(record: Dict[str, object]) -> str:
    kind = record.get("kind", "?")
    run_id = str(record.get("run_id") or "?")[:10]
    sha = str(record.get("git_sha") or "-")[:8]
    if kind == "fuzz":
        fuzz = record.get("fuzz") or {}
        detail = (
            f"seeds={fuzz.get('seeds_run')} failures={fuzz.get('failures')} "
            f"crashes={fuzz.get('crashes')}"
        )
    else:
        total = record.get("total_wall_time_s")
        detail = (
            f"app={record.get('app') or record.get('source')} "
            f"total={total if total is not None else '?'}s "
            f"speedup={record.get('speedup')} "
            f"reused={len(record.get('reused_stages') or {})}"
        )
    return (
        f"{run_id}  {_fmt_age(record)}  {kind:<9} sha={sha:<8} "
        f"exit={record.get('exit_code')}  {detail}"
    )


# -------------------------------------------------------------- subcommands


def _cmd_list(args) -> int:
    ledger = _open_ledger(args.store)
    records = ledger.list(
        kind=args.kind, app=args.app, sha=args.sha, limit=args.limit
    )
    if not records:
        print("ledger: no records", file=sys.stderr)
        return EXIT_OK
    for record in reversed(records):  # newest first
        print(_one_line(record))
    return EXIT_OK


def _resolve_or_die(ledger: RunLedger, spec: str) -> Dict[str, object]:
    record = ledger.resolve(spec)
    if record is None:
        raise SystemExit(
            f"repro-obs: no ledger record matches {spec!r} "
            f"(root: {ledger.store.root})"
        )
    return record


def _cmd_show(args) -> int:
    if args.trace:
        trace = json.loads(Path(args.trace).read_text())
        print(render_waterfall(spans_from_chrome_trace(trace)))
        return EXIT_OK
    ledger = _open_ledger(args.store)
    record = _resolve_or_die(ledger, args.run)
    print(json.dumps(record, indent=2, sort_keys=True))
    trace = record.get("trace") or {}
    path = trace.get("critical_path") or []
    if path:
        print("\ncritical path:")
        for hop in path:
            print(f"  {hop['duration_ms']:>10.2f} ms  {hop['name']}")
    return EXIT_OK


def _stage_delta_table(
    a: Dict[str, object], b: Dict[str, object]
) -> List[str]:
    a_times: Dict[str, float] = dict(a.get("stage_wall_time_s") or {})
    b_times: Dict[str, float] = dict(b.get("stage_wall_time_s") or {})
    lines = [f"{'stage':<12} {'a (s)':>10} {'b (s)':>10} {'delta':>10}"]
    for stage in sorted(set(a_times) | set(b_times)):
        av, bv = a_times.get(stage), b_times.get(stage)
        delta = (
            f"{bv - av:+.3f}" if av is not None and bv is not None else "-"
        )
        lines.append(
            f"{stage:<12} "
            f"{av if av is not None else '-':>10} "
            f"{bv if bv is not None else '-':>10} {delta:>10}"
        )
    a_total = float(a.get("total_wall_time_s") or 0.0)
    b_total = float(b.get("total_wall_time_s") or 0.0)
    lines.append(
        f"{'total':<12} {a_total:>10.3f} {b_total:>10.3f} "
        f"{b_total - a_total:>+10.3f}"
    )
    return lines


def _ns_table(record: Dict[str, object]) -> Dict[str, Dict[str, int]]:
    store = record.get("store") or {}
    # ledger records carry the stats dict flat; run.json nests it
    stats = store.get("stats") or store
    namespaces = stats.get("namespaces")
    if isinstance(namespaces, dict) and namespaces:
        return namespaces
    # older records carry only the hit table
    return {
        ns: {"hits": count}
        for ns, count in (stats.get("hit_namespaces") or {}).items()
    }


def _cmd_diff(args) -> int:
    ledger = _open_ledger(args.store)
    a = _resolve_or_die(ledger, args.a)
    b = _resolve_or_die(ledger, args.b)
    print(f"a: {_one_line(a)}")
    print(f"b: {_one_line(b)}")
    print("\nstage wall time:")
    for line in _stage_delta_table(a, b):
        print(f"  {line}")
    a_ns, b_ns = _ns_table(a), _ns_table(b)
    print("\nstore traffic by namespace (hits a -> b):")
    if not a_ns and not b_ns:
        print("  (no store traffic recorded)")
    for ns in sorted(set(a_ns) | set(b_ns)):
        ah = a_ns.get(ns, {}).get("hits", 0)
        bh = b_ns.get(ns, {}).get("hits", 0)
        am = a_ns.get(ns, {}).get("misses", 0)
        bm = b_ns.get(ns, {}).get("misses", 0)
        print(
            f"  {ns:<20} hits {ah:>5} -> {bh:<5} misses {am:>5} -> {bm:<5}"
        )
    a_counters: Dict[str, float] = dict(a.get("counters") or {})
    b_counters: Dict[str, float] = dict(b.get("counters") or {})
    changed = {
        name
        for name in set(a_counters) | set(b_counters)
        if a_counters.get(name, 0.0) != b_counters.get(name, 0.0)
    }
    if changed:
        print("\ncounter totals that changed:")
        for name in sorted(changed):
            print(
                f"  {name:<40} {a_counters.get(name, 0):>12g} -> "
                f"{b_counters.get(name, 0):<12g}"
            )
    return EXIT_OK


def _cmd_regress(args) -> int:
    if args.bench_baseline or args.bench_current:
        if not (args.bench_baseline and args.bench_current):
            print(
                "repro-obs: bench mode needs both --bench-baseline and "
                "--bench-current",
                file=sys.stderr,
            )
            return EXIT_ERROR
        baseline = json.loads(Path(args.bench_baseline).read_text())
        current = json.loads(Path(args.bench_current).read_text())
        findings = compare_bench_records(
            baseline, current, tolerance=args.tolerance
        )
    else:
        ledger = _open_ledger(args.store)
        if args.current == "latest" and args.app:
            current = ledger.latest(kind="transform", app=args.app)
            if current is None:
                print(
                    f"repro-obs: no transform records for app {args.app!r}",
                    file=sys.stderr,
                )
                return EXIT_ERROR
        else:
            current = _resolve_or_die(ledger, args.current)
        if args.baseline == "prev":
            baseline = ledger.previous(current)
            if baseline is None:
                print(
                    "repro-obs: no baseline in the ledger yet (first run of "
                    "this app/config) — nothing to compare",
                )
                return EXIT_OK
        else:
            baseline = _resolve_or_die(ledger, args.baseline)
        findings = compare_ledger_records(
            baseline,
            current,
            threshold=args.threshold,
            min_seconds=args.min_seconds,
        )
        print(
            f"baseline: {_one_line(baseline)}\n"
            f"current:  {_one_line(current)}\n"
        )
    print(render_findings(findings))
    regressed = [f for f in findings if f.regressed]
    if regressed:
        print(
            f"\nrepro-obs: REGRESSION — {len(regressed)} metric(s) exceeded "
            "their threshold",
            file=sys.stderr,
        )
        return EXIT_REGRESSION
    print("\nrepro-obs: no regression detected")
    return EXIT_OK


def _cmd_report(args) -> int:
    workdir = Path(args.workdir)
    if not workdir.is_dir():
        print(f"repro-obs: {workdir} is not a directory", file=sys.stderr)
        return EXIT_ERROR
    history: List[Dict[str, object]] = []
    try:
        ledger = _open_ledger(args.store)
        app = None
        run = workdir / "run.json"
        if run.is_file():
            source = json.loads(run.read_text()).get("source") or ""
            if str(source).startswith("app:"):
                app = str(source)[len("app:"):]
        history = ledger.list(kind="transform", app=app, limit=args.history)
    except (OSError, ValueError):
        history = []
    out = Path(args.output) if args.output else workdir / "report.html"
    write_report_html(workdir, out, list(reversed(history)))
    print(f"report written to {out}")
    return EXIT_OK


# --------------------------------------------------------------- arg parsing


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=(
            "Cross-run observability: query the run ledger, diff runs, "
            "emit HTML reports and gate CI on performance regressions."
        ),
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="ROOT",
        help="artifact store root (default: REPRO_STORE or ~/.cache/repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list ledger records (newest first)")
    p_list.add_argument("--kind", choices=("transform", "fuzz"), default=None)
    p_list.add_argument("--app", default=None, help="filter by app name")
    p_list.add_argument("--sha", default=None, help="filter by git SHA prefix")
    p_list.add_argument("-n", "--limit", type=int, default=20)
    p_list.set_defaults(func=_cmd_list)

    p_show = sub.add_parser(
        "show", help="print one record (or a trace waterfall)"
    )
    p_show.add_argument(
        "run", nargs="?", default="latest",
        help="run id prefix, 'latest' or 'prev' (default: latest)",
    )
    p_show.add_argument(
        "--trace", default=None, metavar="TRACE_JSON",
        help="render a text waterfall from a Chrome trace file instead",
    )
    p_show.set_defaults(func=_cmd_show)

    p_diff = sub.add_parser("diff", help="compare two records")
    p_diff.add_argument("a", nargs="?", default="prev")
    p_diff.add_argument("b", nargs="?", default="latest")
    p_diff.set_defaults(func=_cmd_diff)

    p_reg = sub.add_parser(
        "regress", help="fail (exit 3) when the current run regressed"
    )
    p_reg.add_argument(
        "--current", default="latest",
        help="record under test (default: latest)",
    )
    p_reg.add_argument(
        "--baseline", default="prev",
        help=(
            "baseline record; 'prev' = most recent successful run of the "
            "same app+config (default)"
        ),
    )
    p_reg.add_argument(
        "--app", default=None,
        help="with --current latest: restrict to this app's records",
    )
    p_reg.add_argument(
        "--threshold", type=float, default=1.5,
        help="ratio beyond which a wall-time increase fails (default 1.5)",
    )
    p_reg.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="ignore ratio breaches smaller than this absolute delta",
    )
    p_reg.add_argument(
        "--bench-baseline", default=None, metavar="FILE",
        help="bench mode: committed BENCH_*.json floors",
    )
    p_reg.add_argument(
        "--bench-current", default=None, metavar="FILE",
        help="bench mode: fresh bench record to gate",
    )
    p_reg.add_argument(
        "--tolerance", type=float, default=0.35,
        help="bench mode: allowed fractional drop/growth (default 0.35)",
    )
    p_reg.set_defaults(func=_cmd_regress)

    p_rep = sub.add_parser(
        "report", help="emit a self-contained HTML run report"
    )
    p_rep.add_argument("workdir", help="a run's working directory")
    p_rep.add_argument(
        "-o", "--output", default=None,
        help="destination (default: WORKDIR/report.html)",
    )
    p_rep.add_argument(
        "--history", type=int, default=10,
        help="ledger records to include in the history table",
    )
    p_rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_arg_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0) and EXIT_ERROR
    try:
        return args.func(args)
    except SystemExit as exc:
        if isinstance(exc.code, str):
            print(exc.code, file=sys.stderr)
            return EXIT_ERROR
        raise
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro-obs: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Hardware-ish counters for the CudaLite interpreter.

Real tuning studies validate analytic models against hardware counters
(nvprof's ``gld_transactions`` & friends); the reproduction's "hardware"
is the interpreter, so the counters are defined over its execution and
gathered per kernel launch into a :class:`KernelCounters` attached to the
launch's :class:`~repro.gpu.interpreter.LaunchRecord`.

Counter semantics (deterministic, hand-countable, identical across the
``vectorized`` / ``loop`` / ``batched`` execution modes):

``global_loads`` / ``global_stores``
    Each evaluation of an array read/write site counts **one event per
    active thread** executing it.  A load inside a ``for`` loop therefore
    counts once per active thread per iteration — what a GPU would issue.
    Byte totals accumulate ``events * itemsize`` alongside.
``shared_loads`` / ``shared_stores``
    Same rule, for ``__shared__`` arrays.
``syncthreads``
    One event per ``__syncthreads()`` execution **per thread block** it
    covers (the vectorized and batched lattices span every block at once,
    the loop mode executes it once per block).
``branch_divergence``
    One event per ``if`` execution whose condition is thread-varying and
    on which the active threads disagree (both outcomes taken).  This is
    a launch-level approximation of warp divergence — coarser than a warp
    scoreboard but exactly the effect the performance model's
    ``divergence_factor`` charges.  Unlike the other counters it is
    *execution-shape dependent*: the per-block loop sees one ``if``
    execution per block where the whole-grid lattices see one, so loop
    totals can legitimately exceed batched/vectorized totals.  The
    ``compiled`` mode matches the lattice it runs on (vectorized or
    batched) bit-exactly; :func:`counters_signature` provides the
    mode-invariant projection for cross-mode differential checks.

Counting is opt-in (``collect_counters=True`` on the interpreter entry
points); when off, the interpreter's hot paths pay one ``is not None``
check per event site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional


@dataclass
class KernelCounters:
    """Event counters for one kernel launch (or an aggregate of many)."""

    kernel: str = ""
    launches: int = 1
    global_loads: int = 0
    global_stores: int = 0
    shared_loads: int = 0
    shared_stores: int = 0
    global_load_bytes: int = 0
    global_store_bytes: int = 0
    syncthreads: int = 0
    branch_divergence: int = 0

    # ------------------------------------------------------------ recording

    def count_load(self, shared: bool, threads: int, itemsize: int) -> None:
        if shared:
            self.shared_loads += threads
        else:
            self.global_loads += threads
            self.global_load_bytes += threads * itemsize

    def count_store(self, shared: bool, threads: int, itemsize: int) -> None:
        if shared:
            self.shared_stores += threads
        else:
            self.global_stores += threads
            self.global_store_bytes += threads * itemsize

    # ----------------------------------------------------------- combining

    def merge(self, other: "KernelCounters") -> None:
        self.launches += other.launches
        self.global_loads += other.global_loads
        self.global_stores += other.global_stores
        self.shared_loads += other.shared_loads
        self.shared_stores += other.shared_stores
        self.global_load_bytes += other.global_load_bytes
        self.global_store_bytes += other.global_store_bytes
        self.syncthreads += other.syncthreads
        self.branch_divergence += other.branch_divergence

    @property
    def global_bytes(self) -> int:
        """Total bytes moved through the (simulated) global memory."""
        return self.global_load_bytes + self.global_store_bytes

    def as_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "launches": self.launches,
            "global_loads": self.global_loads,
            "global_stores": self.global_stores,
            "shared_loads": self.shared_loads,
            "shared_stores": self.shared_stores,
            "global_load_bytes": self.global_load_bytes,
            "global_store_bytes": self.global_store_bytes,
            "syncthreads": self.syncthreads,
            "branch_divergence": self.branch_divergence,
        }


#: counters whose totals are identical across loop/batched/vectorized/
#: compiled execution (branch_divergence is per execution site, which the
#: per-block loop visits once per block)
MODE_INVARIANT_FIELDS = (
    "launches",
    "global_loads",
    "global_stores",
    "shared_loads",
    "shared_stores",
    "global_load_bytes",
    "global_store_bytes",
    "syncthreads",
)


def counters_signature(
    counters: Iterable[Optional[KernelCounters]],
    include_divergence: bool = False,
) -> Dict[str, Dict[str, int]]:
    """Canonical per-kernel totals for differential comparison.

    By default projects onto :data:`MODE_INVARIANT_FIELDS`, which must
    compare equal across *all* execution modes; with
    ``include_divergence`` the full counter set is returned, which must
    compare equal between ``compiled`` and the interpretation mode whose
    lattice it shares (``auto``).
    """
    fields = MODE_INVARIANT_FIELDS + (
        ("branch_divergence",) if include_divergence else ()
    )
    return {
        kernel: {f: int(getattr(total, f)) for f in fields}
        for kernel, total in sorted(aggregate_counters(counters, by_kernel=True).items())
    }


def aggregate_counters(
    counters: Iterable[Optional[KernelCounters]],
    by_kernel: bool = False,
) -> Dict[str, KernelCounters]:
    """Fold per-launch counters into totals.

    Returns ``{"<total>": totals}`` or per-kernel totals when
    ``by_kernel`` is set (keyed by kernel name).  ``None`` entries
    (launches executed without counting) are skipped.
    """
    out: Dict[str, KernelCounters] = {}
    for c in counters:
        if c is None:
            continue
        key = c.kernel if by_kernel else "<total>"
        if key not in out:
            out[key] = KernelCounters(kernel=key, launches=0)
        out[key].merge(c)
    return out

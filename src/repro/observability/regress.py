"""The regression sentinel: compare runs, fail CI when the pipeline slows.

Two comparison modes, both returning plain :class:`Finding` rows the CLI
renders and gates on:

* :func:`compare_ledger_records` — current run vs a ledger baseline:
  per-stage and total wall time may not exceed ``baseline * threshold``
  (with an absolute ``min_seconds`` floor so microsecond stages cannot
  trip the ratio), and the projected speedup may not collapse below
  ``baseline / threshold``.
* :func:`compare_bench_records` — a fresh ``BENCH_*.json`` record vs the
  committed one: throughput/speedup/hit-rate leaves may not drop below
  ``1 - tolerance`` of the baseline, latency leaves (``*_ms`` / ``*_s``)
  may not grow past ``1 + tolerance``.  Count-like leaves are ignored —
  they are exactness checks, ``scripts/check_bench.py``'s job.

Thresholds are deliberately ratio-based: CI runners are noisy, so the
sentinel is tuned to catch collapses (a stage going 2x slower), not
jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Finding",
    "compare_bench_records",
    "compare_ledger_records",
    "render_findings",
]


@dataclass
class Finding:
    """One compared metric and its verdict."""

    metric: str
    baseline: Optional[float]
    current: Optional[float]
    #: ratio current/baseline (inverted for lower-is-better metrics so
    #: > 1 always means "worse")
    ratio: Optional[float]
    threshold: float
    regressed: bool
    note: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": None if self.ratio is None else round(self.ratio, 4),
            "threshold": self.threshold,
            "regressed": self.regressed,
            "note": self.note,
        }


def _ratio(worse: float, better: float) -> Optional[float]:
    return None if better <= 0 else worse / better


def compare_ledger_records(
    baseline: Dict[str, object],
    current: Dict[str, object],
    *,
    threshold: float = 1.5,
    min_seconds: float = 0.05,
) -> List[Finding]:
    """Wall-time and speedup findings for two transform ledger records."""
    findings: List[Finding] = []
    b_times: Dict[str, float] = dict(baseline.get("stage_wall_time_s") or {})
    c_times: Dict[str, float] = dict(current.get("stage_wall_time_s") or {})
    for stage in sorted(set(b_times) & set(c_times)):
        b, c = float(b_times[stage]), float(c_times[stage])
        regressed = c > b * threshold and (c - b) > min_seconds
        findings.append(
            Finding(
                metric=f"stage_wall_time_s.{stage}",
                baseline=b,
                current=c,
                ratio=_ratio(c, b),
                threshold=threshold,
                regressed=regressed,
            )
        )
    b_total = float(baseline.get("total_wall_time_s") or 0.0)
    c_total = float(current.get("total_wall_time_s") or 0.0)
    findings.append(
        Finding(
            metric="total_wall_time_s",
            baseline=b_total,
            current=c_total,
            ratio=_ratio(c_total, b_total),
            threshold=threshold,
            regressed=c_total > b_total * threshold
            and (c_total - b_total) > min_seconds,
        )
    )
    b_speed = baseline.get("speedup")
    c_speed = current.get("speedup")
    if isinstance(b_speed, (int, float)) and isinstance(c_speed, (int, float)):
        findings.append(
            Finding(
                metric="speedup",
                baseline=float(b_speed),
                current=float(c_speed),
                ratio=_ratio(float(b_speed), float(c_speed)),
                threshold=threshold,
                regressed=float(c_speed) * threshold < float(b_speed),
                note="projected transformation speedup",
            )
        )
    b_store = (baseline.get("store") or {})
    c_store = (current.get("store") or {})
    if "hit_rate" in b_store and "hit_rate" in c_store:
        findings.append(
            Finding(
                metric="store.hit_rate",
                baseline=float(b_store["hit_rate"]),
                current=float(c_store["hit_rate"]),
                ratio=None,
                threshold=threshold,
                regressed=False,
                note="informational",
            )
        )
    return findings


# -------------------------------------------------------------- bench mode


def _numeric_leaves(
    record: Dict[str, object], prefix: str = ""
) -> Dict[str, float]:
    leaves: Dict[str, float] = {}
    for key, value in record.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            leaves.update(_numeric_leaves(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            leaves[path] = float(value)
    return leaves


def _classify(path: str) -> Optional[str]:
    """'higher' / 'lower' (is better), or None for ungated leaves."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf.endswith(("_ms", "_s", "_seconds")):
        return "lower"
    if "per_sec" in leaf or "speedup" in leaf or "hit_rate" in leaf:
        return "higher"
    return None


def compare_bench_records(
    baseline: Dict[str, object],
    current: Dict[str, object],
    *,
    tolerance: float = 0.35,
) -> List[Finding]:
    """Ratio findings for two ``repro.bench/1`` records (committed floors
    vs a fresh run); only performance-shaped leaves are gated."""
    b_leaves = _numeric_leaves(baseline)
    c_leaves = _numeric_leaves(current)
    threshold = 1.0 + tolerance
    findings: List[Finding] = []
    for path in sorted(set(b_leaves) & set(c_leaves)):
        direction = _classify(path)
        if direction is None:
            continue
        b, c = b_leaves[path], c_leaves[path]
        if direction == "lower":
            ratio = _ratio(c, b)
            regressed = c > b * threshold
        else:
            ratio = _ratio(b, c)
            regressed = c < b * (1.0 - tolerance)
        findings.append(
            Finding(
                metric=path,
                baseline=b,
                current=c,
                ratio=ratio,
                threshold=threshold,
                regressed=regressed,
                note=f"{direction} is better",
            )
        )
    return findings


def render_findings(findings: List[Finding]) -> str:
    """Fixed-width table of findings (worst first)."""
    if not findings:
        return "(nothing to compare)"
    rows: List[Tuple[str, str, str, str, str]] = []
    ordered = sorted(
        findings, key=lambda f: (not f.regressed, -(f.ratio or 0.0))
    )
    for f in ordered:
        rows.append(
            (
                "REGRESSED" if f.regressed else "ok",
                f.metric,
                "-" if f.baseline is None else f"{f.baseline:.4g}",
                "-" if f.current is None else f"{f.current:.4g}",
                "-" if f.ratio is None else f"{f.ratio:.2f}x",
            )
        )
    widths = [
        max(len(header), *(len(r[i]) for r in rows))
        for i, header in enumerate(("verdict", "metric", "baseline",
                                    "current", "ratio"))
    ]
    header = ("verdict", "metric", "baseline", "current", "ratio")
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)

"""The run manifest: one ``run.json`` per pipeline invocation.

Records everything needed to reproduce and audit a run — the resolved
configuration, the ``REPRO_*`` environment knobs in effect, the seed, the
git revision, per-stage wall time, and the outcome (final speedup and
verification verdict, or the stage-tagged diagnostic of a failed run, so
exit-code-2 failures leave a machine-readable trace too).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, Optional


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Best-effort revision of the working tree (None outside a repo)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def env_knobs() -> Dict[str, str]:
    """Every ``REPRO_*`` environment variable in effect."""
    return {k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")}


def build_run_manifest(
    *,
    source: Optional[str] = None,
    config: Optional[Dict[str, object]] = None,
    stage_times: Optional[Dict[str, float]] = None,
    reports: Optional[Dict[str, str]] = None,
    speedup: Optional[float] = None,
    verified: Optional[bool] = None,
    demotions: int = 0,
    exit_code: int = 0,
    error: Optional[Dict[str, object]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the manifest dict (the CLI writes it as ``run.json``)."""
    manifest: Dict[str, object] = {
        "schema": "repro.run/1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "source": source,
        "config": config or {},
        "env": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "knobs": env_knobs(),
        },
        "git_sha": git_sha(),
        "stage_wall_time_s": {
            k: round(v, 6) for k, v in (stage_times or {}).items()
        },
        "total_wall_time_s": round(sum((stage_times or {}).values()), 6),
        "reports": reports or {},
        "speedup": speedup,
        "verified": verified,
        "demotions": demotions,
        "exit_code": exit_code,
        "error": error,
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_run_manifest(path: str, manifest: Dict[str, object]) -> None:
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")

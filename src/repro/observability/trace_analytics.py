"""Analytics over the span tree: critical path, rollups, waterfall.

The tracer (:mod:`repro.observability.tracing`) records *what happened*;
this module answers *where the time went*.  Three views over one run's
completed spans:

* :func:`critical_path` — the heaviest root-to-leaf chain of spans (the
  sequence of nested operations that bounded the run's wall time);
* :func:`rollup` — per-span-name aggregates: call count, total duration,
  *self* time (duration minus direct children — the part a span spent in
  its own code rather than delegating) and the single slowest instance;
* :func:`render_waterfall` — a plain-text timeline of the span tree,
  bars scaled to the run, for terminals and CI logs.

Everything here consumes plain :class:`~repro.observability.tracing.
SpanRecord` values (or the equivalent dicts loaded back from a
``trace.json``), so the same analytics run live against the in-process
tracer and offline against an exported Chrome trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from .tracing import SpanRecord

__all__ = [
    "SpanStat",
    "critical_path",
    "rollup",
    "render_waterfall",
    "self_times",
    "spans_from_chrome_trace",
    "summarize_spans",
]


def spans_from_chrome_trace(trace: Dict[str, object]) -> List[SpanRecord]:
    """Rebuild span records from an exported ``trace.json`` payload."""
    spans: List[SpanRecord] = []
    for event in trace.get("traceEvents", []):
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        if "span_id" not in args:
            continue
        extra = {
            k: v for k, v in args.items() if k not in ("span_id", "parent_id")
        }
        spans.append(
            SpanRecord(
                span_id=int(args["span_id"]),
                parent_id=args.get("parent_id"),
                name=str(event.get("name", "?")),
                start_us=float(event.get("ts", 0.0)),
                duration_us=float(event.get("dur", 0.0)),
                thread=int(event.get("tid", 0)),
                args=extra,
            )
        )
    return spans


def _children_index(
    spans: Sequence[SpanRecord],
) -> Dict[Optional[int], List[SpanRecord]]:
    index: Dict[Optional[int], List[SpanRecord]] = {}
    for s in spans:
        index.setdefault(s.parent_id, []).append(s)
    for kids in index.values():
        kids.sort(key=lambda s: (s.start_us, s.span_id))
    return index


def _roots(spans: Sequence[SpanRecord]) -> List[SpanRecord]:
    """Spans with no parent *in the recorded set* (dropped parents count)."""
    ids = {s.span_id for s in spans}
    roots = [s for s in spans if s.parent_id is None or s.parent_id not in ids]
    roots.sort(key=lambda s: (s.start_us, s.span_id))
    return roots


def critical_path(spans: Sequence[SpanRecord]) -> List[SpanRecord]:
    """The heaviest root-to-leaf chain: start at the longest root span and
    repeatedly descend into the longest child.

    Greedy descent is exact here because spans nest (a child runs inside
    its parent's interval): the run's wall time is bounded by its longest
    root, that root's by its longest child, and so on down.
    """
    if not spans:
        return []
    index = _children_index(spans)
    path: List[SpanRecord] = []
    node = max(_roots(spans), key=lambda s: s.duration_us, default=None)
    seen = set()
    while node is not None and node.span_id not in seen:
        seen.add(node.span_id)
        path.append(node)
        node = max(
            index.get(node.span_id, []),
            key=lambda s: s.duration_us,
            default=None,
        )
    return path


def self_times(spans: Sequence[SpanRecord]) -> Dict[int, float]:
    """Per-span self time in µs: duration minus direct children (>= 0)."""
    index = _children_index(spans)
    result: Dict[int, float] = {}
    for s in spans:
        child_us = sum(c.duration_us for c in index.get(s.span_id, []))
        result[s.span_id] = max(0.0, s.duration_us - child_us)
    return result


@dataclass
class SpanStat:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    total_us: float = 0.0
    self_us: float = 0.0
    max_us: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "count": self.count,
            "total_ms": round(self.total_us / 1000.0, 3),
            "self_ms": round(self.self_us / 1000.0, 3),
            "max_ms": round(self.max_us / 1000.0, 3),
        }


def rollup(spans: Sequence[SpanRecord]) -> Dict[str, SpanStat]:
    """Per-name aggregates over every recorded span."""
    selfs = self_times(spans)
    stats: Dict[str, SpanStat] = {}
    for s in spans:
        stat = stats.setdefault(s.name, SpanStat(name=s.name))
        stat.count += 1
        stat.total_us += s.duration_us
        stat.self_us += selfs[s.span_id]
        stat.max_us = max(stat.max_us, s.duration_us)
    return stats


def summarize_spans(
    spans: Sequence[SpanRecord], *, path_limit: int = 12, top: int = 16
) -> Dict[str, object]:
    """The compact trace block a ledger record carries.

    ``critical_path`` is truncated to its first ``path_limit`` hops and
    ``self_time_ms`` to the ``top`` names by aggregate self time, so the
    record stays small no matter how many spans the run produced.
    """
    if not spans:
        return {"span_count": 0, "critical_path": [], "self_time_ms": {}}
    path = critical_path(spans)
    stats = sorted(
        rollup(spans).values(), key=lambda st: st.self_us, reverse=True
    )
    return {
        "span_count": len(spans),
        "critical_path": [
            {"name": s.name, "duration_ms": round(s.duration_us / 1000.0, 3)}
            for s in path[:path_limit]
        ],
        "self_time_ms": {
            st.name: round(st.self_us / 1000.0, 3) for st in stats[:top]
        },
    }


def render_waterfall(
    spans: Iterable[SpanRecord],
    *,
    width: int = 48,
    max_depth: int = 2,
    min_fraction: float = 0.01,
    name_width: int = 28,
) -> str:
    """Plain-text waterfall of the span tree.

    One line per span down to ``max_depth``; the bar's offset and length
    are scaled to the full recorded interval.  Spans shorter than
    ``min_fraction`` of the run are folded into a trailing ``(+N below
    threshold)`` note per parent so deep traces stay readable.
    """
    spans = list(spans)
    if not spans:
        return "(no spans recorded)"
    t0 = min(s.start_us for s in spans)
    t1 = max(s.start_us + s.duration_us for s in spans)
    total = max(t1 - t0, 1e-9)
    index = _children_index(spans)
    lines: List[str] = []

    def emit(node: SpanRecord, depth: int) -> None:
        offset = int((node.start_us - t0) / total * width)
        bar = max(1, int(node.duration_us / total * width))
        bar = min(bar, width - min(offset, width - 1))
        label = ("  " * depth + node.name)[: name_width - 1]
        track = " " * min(offset, width - 1) + "#" * bar
        lines.append(
            f"{label:<{name_width}}|{track:<{width}}| "
            f"{node.duration_us / 1000.0:10.2f} ms "
            f"({node.duration_us / total * 100:5.1f}%)"
        )
        if depth >= max_depth:
            return
        hidden = 0
        for child in index.get(node.span_id, []):
            if child.duration_us / total < min_fraction:
                hidden += 1
                continue
            emit(child, depth + 1)
        if hidden:
            label = ("  " * (depth + 1) + f"(+{hidden} below threshold)")
            lines.append(f"{label:<{name_width}}|{'':<{width}}|")

    for root in _roots(spans):
        emit(root, 0)
    header = (
        f"{'span':<{name_width}}|{'timeline':<{width}}| "
        f"{'duration':>10}    share"
    )
    return "\n".join([header, "-" * len(header)] + lines)

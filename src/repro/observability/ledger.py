"""The run ledger: cross-run history inside the artifact store.

Every telemetry-enabled run with a store appends one compact record —
config digest, git SHA, stage wall times, counter totals, store reuse
provenance, trace summary, fuzz campaign stats — into the ``run_ledger``
namespace of :class:`repro.store.ArtifactStore`.  Unlike every other
namespace the ledger is *append-only history*, not a cache: keys are
unique per run rather than content-addressed, and :class:`RunLedger`
queries them back out (``list`` / ``latest`` / ``by_app`` / ``by_sha``)
so two runs can be compared long after their processes exited.

Records ride the store's existing envelope contract — atomic writes,
checksum-validated reads, quarantine of corrupt entries — so concurrent
writers from parallel CI jobs interleave safely and a damaged record
degrades to a skipped row, never a crashed query.

The ledger is strictly fail-soft: an unwritable store downgrades the
append to a logged warning, and it never runs at all when telemetry is
disabled (the bit-identical ``--no-telemetry`` guarantee covers the
ledger too).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from .runinfo import git_sha

if TYPE_CHECKING:  # runtime import is deferred: store -> reliability ->
    # gpu.interpreter imports back into this package's __init__
    from ..store.artifact_store import ArtifactStore

logger = logging.getLogger(__name__)

__all__ = [
    "LEDGER_SCHEMA",
    "RUN_LEDGER_NAMESPACE",
    "RunLedger",
    "append_record",
    "build_fuzz_record",
    "build_service_record",
    "build_transform_record",
    "config_digest",
]

LEDGER_SCHEMA = "repro.ledger/1"
RUN_LEDGER_NAMESPACE = "run_ledger"

#: config fields that do not change what a run computes — two runs that
#: differ only here share a baseline lineage for the regression sentinel
_NON_SEMANTIC_CONFIG_FIELDS = frozenset(
    {"workdir", "metrics_out", "trace_out", "store", "store_root", "telemetry"}
)

_sequence = itertools.count()


def config_digest(config: Dict[str, object]) -> str:
    """Content digest of a resolved configuration, output paths excluded."""
    slim = {
        k: v
        for k, v in sorted(config.items())
        if k not in _NON_SEMANTIC_CONFIG_FIELDS
    }
    canonical = json.dumps(slim, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _app_of(source: Optional[str]) -> Optional[str]:
    """The app name a ``run.json`` source label encodes (None otherwise)."""
    if source and source.startswith("app:"):
        return source[len("app:"):]
    return None


def _base_record(kind: str) -> Dict[str, object]:
    from .. import __version__

    return {
        "schema": LEDGER_SCHEMA,
        "kind": kind,
        "run_id": None,  # filled by append_record
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "unix_time": time.time(),
        "pid": os.getpid(),
        "git_sha": git_sha(),
        "repro_version": __version__,
    }


def build_transform_record(
    *,
    source: str,
    config: Dict[str, object],
    seed: Optional[int] = None,
    stage_times: Optional[Dict[str, float]] = None,
    speedup: Optional[float] = None,
    verified: Optional[bool] = None,
    demotions: int = 0,
    exit_code: int = 0,
    reused: Optional[Dict[str, str]] = None,
    store_stats: Optional[Dict[str, object]] = None,
    counters: Optional[Dict[str, float]] = None,
    trace: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One ledger record for a pipeline run (cold, warm or failed)."""
    times = {k: round(v, 6) for k, v in (stage_times or {}).items()}
    record = _base_record("transform")
    record.update(
        {
            "source": source,
            "app": _app_of(source),
            "config_digest": config_digest(config),
            "seed": seed,
            "exit_code": exit_code,
            "stage_wall_time_s": times,
            "total_wall_time_s": round(sum(times.values()), 6),
            "speedup": speedup,
            "verified": verified,
            "demotions": demotions,
            "reused_stages": dict(reused or {}),
            "store": store_stats,
            "counters": dict(counters or {}),
            "trace": trace,
        }
    )
    return record


def build_fuzz_record(report: Dict[str, object]) -> Dict[str, object]:
    """One ledger record for a fuzz campaign (from its ``repro.fuzz/1``
    report), so nightly fuzz history is queryable next to transforms."""
    campaign = report.get("campaign", {})
    summary = report.get("summary", {})
    oracle_failures: Dict[str, int] = {}
    for failure in report.get("failures", []):
        oracle = str(failure.get("oracle", "?"))
        oracle_failures[oracle] = oracle_failures.get(oracle, 0) + 1
    record = _base_record("fuzz")
    record.update(
        {
            "source": "fuzz-campaign",
            "app": None,
            "exit_code": 0 if not summary.get("failures")
            and not summary.get("crashes") else 1,
            "fuzz": {
                "seed_start": campaign.get("seed_start"),
                "seed_end": campaign.get("seed_end"),
                "seeds_run": campaign.get("seeds_run"),
                "oracles": list(campaign.get("oracles", [])),
                "duration_seconds": campaign.get("duration_seconds"),
                "stopped_early": campaign.get("stopped_early"),
                "failures": summary.get("failures", 0),
                "crashes": summary.get("crashes", 0),
                "unbucketed": summary.get("unbucketed", 0),
                "crash_buckets": dict(summary.get("buckets", {})),
                "oracle_failures": dict(sorted(oracle_failures.items())),
            },
        }
    )
    return record


def build_service_record(
    *,
    source: str,
    config: Dict[str, object],
    request_key: str,
    job_id: str,
    status: str,
    dedup_clients: int = 1,
    speedup: Optional[float] = None,
    verified: Optional[bool] = None,
    demotions: int = 0,
    reused: Optional[Dict[str, str]] = None,
    wall_time_s: Optional[float] = None,
    worker_retries: int = 0,
) -> Dict[str, object]:
    """One ledger record per *served* transformation request.

    The serving path appends one record per executed job (deduplicated
    requests share one execution and hence one record, with
    ``dedup_clients`` counting how many clients it answered), so service
    traffic is queryable next to CLI transforms — same store, same
    schema tag, ``kind == "service"``.
    """
    record = _base_record("service")
    record.update(
        {
            "source": source,
            "app": _app_of(source),
            "config_digest": config_digest(config),
            "exit_code": 0 if status == "ok" else 2,
            "service": {
                "request_key": request_key,
                "job_id": job_id,
                "status": status,
                "dedup_clients": dedup_clients,
                "worker_retries": worker_retries,
                "wall_time_s": wall_time_s,
            },
            "speedup": speedup,
            "verified": verified,
            "demotions": demotions,
            "reused_stages": dict(reused or {}),
        }
    )
    return record


def append_record(
    store: ArtifactStore, record: Dict[str, object]
) -> Optional[str]:
    """Append ``record`` to the ledger; returns its run id (None if the
    write failed — the run must never break on its own bookkeeping)."""
    seq = next(_sequence)
    raw = repr(
        (
            "run-ledger",
            record.get("kind"),
            record.get("source"),
            record.get("config_digest"),
            time.time_ns(),
            os.getpid(),
            seq,
        )
    )
    run_id = hashlib.sha256(raw.encode("utf-8")).hexdigest()
    record = dict(record)
    record["run_id"] = run_id
    if store.put(RUN_LEDGER_NAMESPACE, run_id, record):
        return run_id
    return None


class RunLedger:
    """Query API over the ``run_ledger`` namespace of one store root."""

    def __init__(self, store: "Union[ArtifactStore, str, Path]") -> None:
        from ..store.artifact_store import ArtifactStore

        self.store = (
            store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        )

    # ------------------------------------------------------------ scanning

    def _namespace_dir(self) -> Path:
        from ..store.artifact_store import LAYOUT_DIR

        return self.store.root / LAYOUT_DIR / RUN_LEDGER_NAMESPACE

    def keys(self) -> List[str]:
        base = self._namespace_dir()
        if not base.is_dir():
            return []
        return sorted(
            p.stem for p in base.rglob("*.json") if not p.name.startswith(".")
        )

    def records(self) -> List[Dict[str, object]]:
        """Every valid record, oldest first (corrupt entries are skipped
        and quarantined by the store's envelope validation)."""
        records = []
        for key in self.keys():
            payload = self.store.get(RUN_LEDGER_NAMESPACE, key)
            if payload is None or payload.get("schema") != LEDGER_SCHEMA:
                continue
            records.append(payload)
        records.sort(key=lambda r: (r.get("unix_time") or 0.0, r.get("run_id")))
        return records

    # ------------------------------------------------------------- queries

    def list(
        self,
        *,
        kind: Optional[str] = None,
        app: Optional[str] = None,
        sha: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        """Filtered records, oldest first; ``limit`` keeps the newest N."""
        records = self.records()
        if kind is not None:
            records = [r for r in records if r.get("kind") == kind]
        if app is not None:
            records = [r for r in records if r.get("app") == app]
        if sha is not None:
            records = [
                r for r in records
                if r.get("git_sha") and str(r["git_sha"]).startswith(sha)
            ]
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def latest(self, **filters: object) -> Optional[Dict[str, object]]:
        records = self.list(**filters)  # type: ignore[arg-type]
        return records[-1] if records else None

    def by_app(self, app: str) -> List[Dict[str, object]]:
        return self.list(app=app)

    def by_sha(self, sha: str) -> List[Dict[str, object]]:
        return self.list(sha=sha)

    def get(self, run_id: str) -> Optional[Dict[str, object]]:
        return self.store.get(RUN_LEDGER_NAMESPACE, run_id)

    def previous(
        self, record: Dict[str, object]
    ) -> Optional[Dict[str, object]]:
        """The most recent *earlier* successful record of the same lineage
        (same kind + app + config digest) — the regression baseline."""
        when = record.get("unix_time") or 0.0
        candidates = [
            r
            for r in self.records()
            if r.get("run_id") != record.get("run_id")
            and (r.get("unix_time") or 0.0) <= when
            and r.get("kind") == record.get("kind")
            and r.get("app") == record.get("app")
            and r.get("config_digest") == record.get("config_digest")
            and r.get("exit_code") == 0
        ]
        return candidates[-1] if candidates else None

    def resolve(self, spec: str) -> Optional[Dict[str, object]]:
        """A record from a CLI spec: ``latest``, ``prev``, or an id prefix."""
        if spec == "latest":
            return self.latest()
        if spec == "prev":
            records = self.records()
            return records[-2] if len(records) >= 2 else None
        matches = [k for k in self.keys() if k.startswith(spec)]
        if len(matches) == 1:
            return self.get(matches[0])
        if len(matches) > 1:
            logger.warning(
                "ledger: run id prefix %r is ambiguous (%d matches)",
                spec, len(matches),
            )
        return None

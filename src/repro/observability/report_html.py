"""Self-contained HTML run report (``repro-obs report``).

One static page, zero external assets, built from the artifacts a
telemetry-enabled run leaves in its workdir plus (optionally) the run
ledger for cross-run context:

* header — source, git SHA, outcome (speedup / verified / demotions);
* stage waterfall — SVG bars over the per-stage wall times;
* fitness curve — best/mean GGA fitness per generation from
  ``search_telemetry.jsonl`` (absent on warm runs, and the page says so);
* counter-vs-model table — measured interpreter bytes against the
  analytic model's projections from ``model_validation.json``;
* store hit table — per-namespace hits / misses / bytes from
  ``run.json``'s store stats;
* run history — recent ledger records for the same app.

Everything is stdlib: hand-assembled HTML with inline CSS and SVG.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

__all__ = ["build_report_html", "write_report_html"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
     border-bottom: 1px solid #d8d8e0; padding-bottom: .25rem; }
table { border-collapse: collapse; font-size: .85rem; margin: .5rem 0; }
th, td { border: 1px solid #d8d8e0; padding: .3rem .6rem; text-align: right; }
th { background: #f2f2f7; } td:first-child, th:first-child { text-align: left; }
.kv { font-size: .9rem; } .kv dt { font-weight: 600; display: inline; }
.kv dd { display: inline; margin: 0 1.2rem 0 .4rem; }
.muted { color: #6a6a7a; font-size: .85rem; }
svg text { font-family: inherit; }
.ok { color: #0a7a3a; } .bad { color: #b02525; }
"""


def _esc(value: object) -> str:
    return html.escape("" if value is None else str(value))


def _load_json(path: Path) -> Optional[object]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, ValueError):
        return None


def _load_jsonl(path: Path) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    try:
        text = path.read_text()
    except OSError:
        return rows
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, dict):
            rows.append(row)
    return rows


# ----------------------------------------------------------------- sections


def _header_section(run: Optional[Dict[str, object]]) -> str:
    if not run:
        return "<p class='muted'>no run.json found in the workdir</p>"
    verified = run.get("verified")
    verdict = (
        "<span class='ok'>verified</span>" if verified
        else "<span class='bad'>unverified</span>" if verified is False
        else "n/a"
    )
    speedup = run.get("speedup")
    parts = [
        ("source", _esc(run.get("source"))),
        ("git", _esc((run.get("git_sha") or "?")[:12])),
        ("timestamp", _esc(run.get("timestamp"))),
        ("speedup", "n/a" if speedup is None else f"{float(speedup):.3f}x"),
        ("verification", verdict),
        ("demotions", _esc(run.get("demotions", 0))),
        ("exit code", _esc(run.get("exit_code", 0))),
    ]
    items = "".join(f"<dt>{k}</dt><dd>{v}</dd>" for k, v in parts)
    return f"<dl class='kv'>{items}</dl>"


def _waterfall_section(run: Optional[Dict[str, object]]) -> str:
    times: Dict[str, float] = dict((run or {}).get("stage_wall_time_s") or {})
    if not times:
        return "<p class='muted'>no stage wall times recorded</p>"
    total = sum(times.values()) or 1e-9
    bar_w, row_h, label_w = 560, 26, 110
    height = row_h * len(times) + 10
    parts = [
        f"<svg width='{bar_w + label_w + 130}' height='{height}' "
        f"role='img' aria-label='stage waterfall'>"
    ]
    offset = 0.0
    for i, (stage, seconds) in enumerate(times.items()):
        y = 5 + i * row_h
        x = label_w + offset / total * bar_w
        w = max(2.0, seconds / total * bar_w)
        parts.append(
            f"<text x='{label_w - 8}' y='{y + 16}' text-anchor='end' "
            f"font-size='12'>{_esc(stage)}</text>"
            f"<rect x='{x:.1f}' y='{y}' width='{w:.1f}' height='{row_h - 8}' "
            f"fill='#5b6abf' rx='2'/>"
            f"<text x='{x + w + 6:.1f}' y='{y + 16}' font-size='12'>"
            f"{seconds:.3f}s ({seconds / total * 100:.1f}%)</text>"
        )
        offset += seconds
    parts.append("</svg>")
    parts.append(
        f"<p class='muted'>total {total:.3f}s across {len(times)} stages "
        f"(bars laid out sequentially in execution order)</p>"
    )
    return "".join(parts)


def _fitness_section(rows: Sequence[Dict[str, object]]) -> str:
    gens = [r for r in rows if r.get("type") == "generation"]
    if not gens:
        return (
            "<p class='muted'>no generation rows — the search result was "
            "reused from the store (warm run) or telemetry was off</p>"
        )

    def series(key: str) -> List[float]:
        return [
            float(r[key]) for r in gens
            if isinstance(r.get(key), (int, float))
        ]

    best, mean = series("best_fitness"), series("mean_fitness")
    values = best + mean
    if not values:
        return "<p class='muted'>fitness rows carried no numeric data</p>"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    w, h, pad = 620, 180, 30

    def polyline(points: List[float], color: str) -> str:
        if len(points) < 2:
            return ""
        step = (w - 2 * pad) / (len(points) - 1)
        coords = " ".join(
            f"{pad + i * step:.1f},"
            f"{h - pad - (v - lo) / span * (h - 2 * pad):.1f}"
            for i, v in enumerate(points)
        )
        return (
            f"<polyline points='{coords}' fill='none' stroke='{color}' "
            f"stroke-width='2'/>"
        )

    return (
        f"<svg width='{w}' height='{h}' role='img' aria-label='fitness curve'>"
        f"<rect x='{pad}' y='{pad - 10}' width='{w - 2 * pad}' "
        f"height='{h - 2 * pad + 10}' fill='#fafafc' stroke='#d8d8e0'/>"
        + polyline(best, "#5b6abf") + polyline(mean, "#c08a3e")
        + f"<text x='{pad}' y='{h - 6}' font-size='11'>generation 0.."
        f"{len(gens) - 1} — <tspan fill='#5b6abf'>best</tspan> / "
        f"<tspan fill='#c08a3e'>mean</tspan> fitness "
        f"[{lo:.4g} .. {hi:.4g}] (lower is better)</text></svg>"
    )


def _model_section(validation: Optional[Dict[str, object]]) -> str:
    kernels = (validation or {}).get("kernels")
    if not kernels:
        return "<p class='muted'>no model_validation.json in the workdir</p>"
    rows = []
    for entry in kernels:
        rows.append(
            "<tr>"
            f"<td>{_esc(entry.get('kernel'))}</td>"
            f"<td>{_esc(entry.get('measured_global_bytes'))}</td>"
            f"<td>{_esc(entry.get('projected_bytes'))}</td>"
            f"<td>{_esc(entry.get('bytes_ratio'))}</td>"
            "</tr>"
        )
    return (
        "<table><tr><th>kernel launch</th><th>measured bytes</th>"
        "<th>projected bytes</th><th>ratio</th></tr>"
        + "".join(rows) + "</table>"
    )


def _store_section(run: Optional[Dict[str, object]]) -> str:
    store = (run or {}).get("store") or {}
    if not store.get("enabled"):
        return "<p class='muted'>store disabled for this run</p>"
    stats = store.get("stats") or {}
    namespaces = stats.get("namespaces") or {}
    head = (
        f"<dl class='kv'><dt>root</dt><dd>{_esc(store.get('root'))}</dd>"
        f"<dt>hits</dt><dd>{_esc(stats.get('hits'))}</dd>"
        f"<dt>misses</dt><dd>{_esc(stats.get('misses'))}</dd>"
        f"<dt>hit rate</dt><dd>{_esc(stats.get('hit_rate'))}</dd>"
        f"<dt>reused stages</dt>"
        f"<dd>{_esc(', '.join(sorted(store.get('reused_stages') or {})) or 'none')}"
        "</dd></dl>"
    )
    if not namespaces:
        hits = stats.get("hit_namespaces") or {}
        if not hits:
            return head + "<p class='muted'>no per-namespace traffic</p>"
        rows = "".join(
            f"<tr><td>{_esc(ns)}</td><td>{count}</td></tr>"
            for ns, count in sorted(hits.items())
        )
        return head + (
            "<table><tr><th>namespace</th><th>hits</th></tr>"
            + rows + "</table>"
        )
    rows = "".join(
        "<tr>"
        f"<td>{_esc(ns)}</td><td>{row.get('hits', 0)}</td>"
        f"<td>{row.get('misses', 0)}</td><td>{row.get('writes', 0)}</td>"
        f"<td>{row.get('bytes_read', 0)}</td>"
        f"<td>{row.get('bytes_written', 0)}</td>"
        "</tr>"
        for ns, row in sorted(namespaces.items())
    )
    return head + (
        "<table><tr><th>namespace</th><th>hits</th><th>misses</th>"
        "<th>writes</th><th>bytes read</th><th>bytes written</th></tr>"
        + rows + "</table>"
    )


def _history_section(records: Sequence[Dict[str, object]]) -> str:
    if not records:
        return "<p class='muted'>no ledger records available</p>"
    rows = "".join(
        "<tr>"
        f"<td>{_esc((r.get('run_id') or '?')[:10])}</td>"
        f"<td>{_esc(r.get('timestamp'))}</td>"
        f"<td>{_esc((r.get('git_sha') or '?')[:10])}</td>"
        f"<td>{float(r.get('total_wall_time_s') or 0.0):.3f}</td>"
        f"<td>{_esc(r.get('speedup'))}</td>"
        f"<td>{_esc(', '.join(sorted(r.get('reused_stages') or {})) or '-')}</td>"
        "</tr>"
        for r in records
    )
    return (
        "<table><tr><th>run</th><th>timestamp</th><th>git</th>"
        "<th>total s</th><th>speedup</th><th>reused</th></tr>"
        + rows + "</table>"
    )


# ------------------------------------------------------------------- entry


def build_report_html(
    workdir: Path,
    history: Optional[Sequence[Dict[str, object]]] = None,
) -> str:
    """Assemble the report page from one run's workdir artifacts."""
    run = _load_json(workdir / "run.json")
    run = run if isinstance(run, dict) else None
    telemetry_rows = _load_jsonl(workdir / "search_telemetry.jsonl")
    validation = _load_json(workdir / "model_validation.json")
    validation = validation if isinstance(validation, dict) else None
    title = f"repro run report — {_esc((run or {}).get('source', workdir.name))}"
    sections = [
        ("Run", _header_section(run)),
        ("Stage waterfall", _waterfall_section(run)),
        ("Search fitness", _fitness_section(telemetry_rows)),
        ("Counters vs analytic model", _model_section(validation)),
        ("Artifact store", _store_section(run)),
        ("Run history (ledger)", _history_section(history or [])),
    ]
    body = "".join(
        f"<h2>{_esc(name)}</h2>{content}" for name, content in sections
    )
    return (
        "<!DOCTYPE html><html lang='en'><head><meta charset='utf-8'>"
        f"<title>{title}</title><style>{_CSS}</style></head>"
        f"<body><h1>{title}</h1>{body}"
        "<p class='muted'>generated by repro-obs report — self-contained, "
        "no external assets</p></body></html>"
    )


def write_report_html(
    workdir: Path,
    out: Path,
    history: Optional[Sequence[Dict[str, object]]] = None,
) -> None:
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(build_report_html(workdir, history))

"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the numeric backbone of the observability layer: every
subsystem increments named, labelled series into one process-wide
:class:`MetricsRegistry`, and the pipeline exports them as Prometheus
text or JSON at the end of a run.

Design constraints, in order:

* **Cheap when disabled.**  Every mutator checks the global telemetry
  switch first; a disabled run costs one branch per call site.
* **Thread-safe.**  One lock guards the maps; mutators are O(1) dict
  operations under it (the GGA's thread pool records eval metrics
  concurrently).
* **Process-pool-mergeable.**  :meth:`MetricsRegistry.snapshot` returns a
  plain-dict, picklable :class:`MetricsSnapshot`;
  :meth:`MetricsRegistry.merge` folds a snapshot back in (counters and
  histogram buckets add, gauges last-write-wins).  This is how
  ``search/parallel.py`` workers ship their metrics back with their
  results.
* **No dependencies.**  Stdlib only.

Label values are stringified; a series is keyed on
``(name, sorted((label, value), ...))`` so label order never splits a
series.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .runtime import telemetry_enabled

#: Series key: metric name plus its sorted label pairs.
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Default histogram buckets, tuned for seconds-scale durations.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, float("inf"),
)


def _series_key(name: str, labels: Dict[str, object]) -> SeriesKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class HistogramData:
    """One histogram series: cumulative bucket counts plus sum/count."""

    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * len(self.buckets)

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def merge(self, other: "HistogramData") -> None:
        if other.buckets != self.buckets:
            # different bucketing: fold the other's mass into sum/count and
            # the overflow bucket rather than dropping it
            self.total += other.total
            self.count += other.count
            self.counts[-1] += sum(other.counts)
            return
        self.total += other.total
        self.count += other.count
        for i, c in enumerate(other.counts):
            self.counts[i] += c

    def as_dict(self) -> Dict[str, object]:
        return {
            "buckets": [b if b != float("inf") else "+Inf" for b in self.buckets],
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


@dataclass
class MetricsSnapshot:
    """Picklable, plain-data view of a registry (the pool wire format)."""

    counters: Dict[SeriesKey, float] = field(default_factory=dict)
    gauges: Dict[SeriesKey, float] = field(default_factory=dict)
    histograms: Dict[SeriesKey, HistogramData] = field(default_factory=dict)


class MetricsRegistry:
    """Thread-safe, mergeable store of labelled metric series."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[SeriesKey, float] = {}
        self._gauges: Dict[SeriesKey, float] = {}
        self._histograms: Dict[SeriesKey, HistogramData] = {}

    # ------------------------------------------------------------- mutators

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` to the counter series ``name{labels}``."""
        if not telemetry_enabled():
            return
        key = _series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge series ``name{labels}`` to ``value``."""
        if not telemetry_enabled():
            return
        key = _series_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> None:
        """Record ``value`` into the histogram series ``name{labels}``."""
        if not telemetry_enabled():
            return
        key = _series_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = HistogramData(
                    buckets=tuple(buckets) if buckets else DEFAULT_BUCKETS
                )
                self._histograms[key] = hist
            hist.observe(value)

    # -------------------------------------------------------------- readers

    def counter_value(self, name: str, **labels: object) -> float:
        with self._lock:
            return self._counters.get(_series_key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of every series of counter ``name`` across label sets."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items() if n == name)

    def counter_totals(self) -> Dict[str, float]:
        """Every counter summed across label sets, keyed by name (the
        compact metrics snapshot a ledger record carries)."""
        totals: Dict[str, float] = {}
        with self._lock:
            for (name, _), value in self._counters.items():
                totals[name] = totals.get(name, 0.0) + value
        return dict(sorted(totals.items()))

    def gauge_value(self, name: str, **labels: object) -> Optional[float]:
        with self._lock:
            return self._gauges.get(_series_key(name, labels))

    def histogram_data(self, name: str, **labels: object) -> Optional[HistogramData]:
        with self._lock:
            return self._histograms.get(_series_key(name, labels))

    # ------------------------------------------------------- merge/snapshot

    def snapshot(self) -> MetricsSnapshot:
        """Picklable copy of every series (what pool workers return)."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    k: HistogramData(
                        buckets=h.buckets,
                        counts=list(h.counts),
                        total=h.total,
                        count=h.count,
                    )
                    for k, h in self._histograms.items()
                },
            )

    def merge(self, other: "MetricsSnapshot | MetricsRegistry") -> None:
        """Fold another registry/snapshot in: counters and histogram mass
        add; gauges take the incoming value (last write wins)."""
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        with self._lock:
            for key, value in snap.counters.items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            for key, value in snap.gauges.items():
                self._gauges[key] = value
            for key, hist in snap.histograms.items():
                mine = self._histograms.get(key)
                if mine is None:
                    self._histograms[key] = HistogramData(
                        buckets=hist.buckets,
                        counts=list(hist.counts),
                        total=hist.total,
                        count=hist.count,
                    )
                else:
                    mine.merge(hist)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------ exporters

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable dump of every series."""

        def fmt(key: SeriesKey) -> Dict[str, object]:
            name, labels = key
            return {"name": name, "labels": dict(labels)}

        with self._lock:
            return {
                "counters": [
                    {**fmt(k), "value": v} for k, v in sorted(self._counters.items())
                ],
                "gauges": [
                    {**fmt(k), "value": v} for k, v in sorted(self._gauges.items())
                ],
                "histograms": [
                    {**fmt(k), **h.as_dict()}
                    for k, h in sorted(self._histograms.items())
                ],
            }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition (0.0.4) of every series."""

        def labelstr(labels: Tuple[Tuple[str, str], ...]) -> str:
            if not labels:
                return ""
            body = ",".join(
                '%s="%s"' % (k, v.replace("\\", "\\\\").replace('"', '\\"'))
                for k, v in labels
            )
            return "{%s}" % body

        lines: List[str] = []
        with self._lock:
            counter_names = sorted({n for n, _ in self._counters})
            for name in counter_names:
                lines.append(f"# TYPE {name} counter")
                for (n, labels), value in sorted(self._counters.items()):
                    if n == name:
                        lines.append(f"{name}{labelstr(labels)} {value:g}")
            gauge_names = sorted({n for n, _ in self._gauges})
            for name in gauge_names:
                lines.append(f"# TYPE {name} gauge")
                for (n, labels), value in sorted(self._gauges.items()):
                    if n == name:
                        lines.append(f"{name}{labelstr(labels)} {value:g}")
            hist_names = sorted({n for n, _ in self._histograms})
            for name in hist_names:
                lines.append(f"# TYPE {name} histogram")
                for (n, labels), hist in sorted(self._histograms.items()):
                    if n != name:
                        continue
                    cumulative = 0
                    for bound, count in zip(hist.buckets, hist.counts):
                        cumulative += count
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        lines.append(
                            f"{name}_bucket{labelstr(labels + (('le', le),))} "
                            f"{cumulative}"
                        )
                    lines.append(f"{name}_sum{labelstr(labels)} {hist.total:g}")
                    lines.append(f"{name}_count{labelstr(labels)} {hist.count}")
        return "\n".join(lines) + "\n"

    def write_prometheus(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_prometheus_text())


_registry: Optional[MetricsRegistry] = None
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem records into."""
    global _registry
    with _registry_lock:
        if _registry is None:
            _registry = MetricsRegistry()
        return _registry


def reset_registry() -> None:
    """Drop the process-wide registry (tests)."""
    global _registry
    with _registry_lock:
        _registry = None

"""Hierarchical tracing spans with a Chrome trace-event exporter.

Spans form a tree per thread of execution
(``span("stage:search") > span("gga:gen:12") > span("gga:eval")``):
entering a span makes it the parent of any span opened underneath it
(propagated through a :mod:`contextvars` variable, so nesting is correct
across the GGA's worker threads too).  Completed spans accumulate in a
bounded process-wide :class:`Tracer` and export as a Chrome
trace-event-format JSON file (``trace.json``) that chrome://tracing and
Perfetto load directly.

Costs: an enabled span is two ``perf_counter`` calls, a contextvar
set/reset and one list append; a disabled one (``--no-telemetry``) is a
single branch returning a shared no-op context manager.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from contextvars import ContextVar
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

from .runtime import telemetry_enabled

#: Cap on retained spans; beyond it new spans are counted but dropped so a
#: long-lived process cannot grow without bound.
DEFAULT_MAX_SPANS = 200_000

_current_span_id: ContextVar[Optional[int]] = ContextVar(
    "repro_current_span", default=None
)


@dataclass
class SpanRecord:
    """One completed span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_us: float
    duration_us: float
    thread: int
    args: Dict[str, object] = field(default_factory=dict)


class Tracer:
    """Bounded collector of completed spans."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        self._next_id = 1
        self._epoch = perf_counter()
        self.dropped = 0
        #: correlation id shared by every span/log line of this tracer's
        #: lifetime (see :mod:`repro.observability.logfmt`)
        self.trace_id = uuid.uuid4().hex[:16]

    # ----------------------------------------------------------- recording

    def now_us(self) -> float:
        return (perf_counter() - self._epoch) * 1e6

    def next_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(record)

    def spans(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._next_id = 1
            self._epoch = perf_counter()
            self.dropped = 0
            self.trace_id = uuid.uuid4().hex[:16]

    # ------------------------------------------------------------ querying

    def find(self, name: str) -> List[SpanRecord]:
        return [s for s in self.spans() if s.name == name]

    def children_of(self, span: SpanRecord) -> List[SpanRecord]:
        return [s for s in self.spans() if s.parent_id == span.span_id]

    def span_tree(self) -> Dict[Optional[int], List[SpanRecord]]:
        """Parent id → children, for structural assertions."""
        tree: Dict[Optional[int], List[SpanRecord]] = {}
        for s in self.spans():
            tree.setdefault(s.parent_id, []).append(s)
        return tree

    # ------------------------------------------------------------- export

    def to_chrome_trace(self) -> Dict[str, object]:
        """Chrome trace-event format: complete ('X') events + metadata."""
        pid = os.getpid()
        events: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro-transform"},
            }
        ]
        for s in self.spans():
            args: Dict[str, object] = {
                "span_id": s.span_id,
                "parent_id": s.parent_id,
            }
            args.update(s.args)
            events.append(
                {
                    "name": s.name,
                    "ph": "X",
                    "ts": s.start_us,
                    "dur": s.duration_us,
                    "pid": pid,
                    "tid": s.thread,
                    "cat": s.name.split(":", 1)[0],
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)
            fh.write("\n")


class _Span:
    """Context manager recording one span into a tracer."""

    __slots__ = ("tracer", "name", "args", "span_id", "parent_id",
                 "_start", "_token")

    def __init__(self, tracer: Tracer, name: str, args: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self.parent_id = _current_span_id.get()
        self.span_id = self.tracer.next_id()
        self._token = _current_span_id.set(self.span_id)
        self._start = self.tracer.now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self.tracer.now_us()
        _current_span_id.reset(self._token)
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self.tracer.record(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start_us=self._start,
                duration_us=end - self._start,
                thread=threading.get_ident() & 0xFFFF,
                args=self.args,
            )
        )

    def set(self, **args: object) -> None:
        """Attach attributes to the span while it is open."""
        self.args.update(args)


class _NullSpan:
    """Shared no-op span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **args: object) -> None:
        return None


_NULL_SPAN = _NullSpan()

_tracer: Optional[Tracer] = None
_tracer_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer spans record into."""
    global _tracer
    with _tracer_lock:
        if _tracer is None:
            _tracer = Tracer()
        return _tracer


def reset_tracer() -> None:
    """Drop the process-wide tracer (tests / fresh runs)."""
    global _tracer
    with _tracer_lock:
        _tracer = None


def current_span_id() -> Optional[int]:
    """The id of the innermost open span (None outside any span)."""
    return _current_span_id.get()


def current_trace_id() -> Optional[str]:
    """The process tracer's correlation id (without instantiating one)."""
    return _tracer.trace_id if _tracer is not None else None


def span(name: str, **args: object) -> "_Span | _NullSpan":
    """Open a span named ``name`` under the current span (if any).

    Returns a context manager; when telemetry is disabled this is a
    shared no-op object and nothing is recorded.
    """
    if not telemetry_enabled():
        return _NULL_SPAN
    return _Span(get_tracer(), name, args)

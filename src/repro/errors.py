"""Exception hierarchy for the repro framework.

Every error raised by the framework derives from :class:`ReproError` so that
callers embedding the transformation pipeline can catch a single base class.
The hierarchy mirrors the pipeline stages: language-processing errors
(lexing/parsing/semantics), analysis errors, graph errors, search errors and
code-generation errors.

Errors that surface from inside a pipeline stage carry the stage name on
their ``stage`` attribute (set by the framework when the stage raises), so
front ends can point at the failing stage without parsing messages.
Interpreter errors additionally carry structured location fields (kernel,
array, axis, block/thread coordinates) so verification-gate failures are
actionable.
"""

from __future__ import annotations

from typing import Optional, Tuple


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""

    #: pipeline stage that raised the error (filled in by the framework)
    stage: Optional[str] = None


class CudaLiteError(ReproError):
    """Base class for errors in the CudaLite language substrate."""


class LexError(CudaLiteError):
    """A character sequence could not be tokenized.

    Carries the 1-based source ``line`` and ``col`` of the offending
    character so tooling can point at the exact location.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}" if line else message)
        self.line = line
        self.col = col


class ParseError(CudaLiteError):
    """The token stream does not form a valid CudaLite program."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}" if line else message)
        self.line = line
        self.col = col


class SemanticError(CudaLiteError):
    """The program parses but violates CudaLite static semantics."""


class InterpreterError(ReproError):
    """Runtime failure while executing a CudaLite program on the simulator.

    ``kernel`` names the kernel being executed when the failure occurred
    (``None`` for host-side failures).
    """

    def __init__(self, message: str, *, kernel: Optional[str] = None) -> None:
        super().__init__(message)
        self.kernel = kernel


class OutOfBoundsError(InterpreterError):
    """An active thread accessed an array outside its bounds.

    Structured fields locate the failure: the offending ``array``, the
    ``axis`` and ``index`` of the bad access, and the ``block`` / ``thread``
    coordinates of the first offending thread (``None`` when the executing
    mode cannot attribute the access to a single thread).
    """

    def __init__(
        self,
        message: str,
        *,
        kernel: Optional[str] = None,
        array: Optional[str] = None,
        axis: Optional[int] = None,
        index: Optional[int] = None,
        block: Optional[Tuple[int, int, int]] = None,
        thread: Optional[Tuple[int, int, int]] = None,
    ) -> None:
        super().__init__(message, kernel=kernel)
        self.array = array
        self.axis = axis
        self.index = index
        self.block = block
        self.thread = thread


class LoweringError(ReproError):
    """The kernel lowerer cannot compile a construct to vectorized numpy.

    Never fatal: the compiled execution mode catches it and falls back,
    per kernel, to the tree-walking interpreter.
    """


class AnalysisError(ReproError):
    """A static-analysis pass could not process a kernel."""


class GraphError(ReproError):
    """DDG/OEG construction or optimization failed."""


class SearchError(ReproError):
    """The optimization (GGA) stage failed or was misconfigured."""


class TransformError(ReproError):
    """Code generation (fission/fusion) failed."""


class VerificationError(ReproError):
    """A generated kernel failed the semantic verification gate: its output
    does not match the unfused constituents it replaces."""


class FaultInjectionError(ReproError):
    """The fault-injection harness itself was misconfigured (unknown seam,
    malformed spec) — distinct from the faults it injects."""


class PipelineError(ReproError):
    """End-to-end pipeline orchestration failure (bad stage order etc.)."""


class StoreError(ReproError):
    """The persistent artifact store could not service a request.

    The pipeline never lets this escape a run — store failures degrade to
    a cold (uncached) execution — but the store raises it for genuinely
    unusable configurations (e.g. a root path that is a regular file).
    """


class ConfigError(ReproError):
    """A :class:`repro.api.TransformConfig` (or config file) is invalid."""


class ServiceError(ReproError):
    """The transformation service could not serve a request.

    Raised for malformed ``repro.service/1`` wire payloads, for requests
    the serving policy rejects (client-supplied output paths), and when a
    job exhausts its worker-crash retry budget.
    """


class JobNotFound(ServiceError):
    """No job with the requested id is known to this process/server."""

"""Exception hierarchy for the repro framework.

Every error raised by the framework derives from :class:`ReproError` so that
callers embedding the transformation pipeline can catch a single base class.
The hierarchy mirrors the pipeline stages: language-processing errors
(lexing/parsing/semantics), analysis errors, graph errors, search errors and
code-generation errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


class CudaLiteError(ReproError):
    """Base class for errors in the CudaLite language substrate."""


class LexError(CudaLiteError):
    """A character sequence could not be tokenized.

    Carries the 1-based source ``line`` and ``col`` of the offending
    character so tooling can point at the exact location.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}" if line else message)
        self.line = line
        self.col = col


class ParseError(CudaLiteError):
    """The token stream does not form a valid CudaLite program."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}" if line else message)
        self.line = line
        self.col = col


class SemanticError(CudaLiteError):
    """The program parses but violates CudaLite static semantics."""


class InterpreterError(ReproError):
    """Runtime failure while executing a CudaLite program on the simulator."""


class OutOfBoundsError(InterpreterError):
    """An active thread accessed an array outside its bounds."""


class AnalysisError(ReproError):
    """A static-analysis pass could not process a kernel."""


class GraphError(ReproError):
    """DDG/OEG construction or optimization failed."""


class SearchError(ReproError):
    """The optimization (GGA) stage failed or was misconfigured."""


class TransformError(ReproError):
    """Code generation (fission/fusion) failed."""


class PipelineError(ReproError):
    """End-to-end pipeline orchestration failure (bad stage order etc.)."""

"""Extending the framework: custom objective, GA parameter file, custom GPU.

The paper's framework is designed to be extended by its users: the
optimization objective is a black box returning a projected GFLOPS value,
the GA is configured through a parameter file the programmer can amend,
and the device metadata comes from a query step — all three extension
points are exercised here:

1. register a custom objective that penalizes kernel *count* on top of the
   projected performance (a launch-latency-sensitive variant);
2. write / edit / reload a GA parameter file;
3. register a custom (future-looking, bigger-shared-memory) device and
   transform against it.

Run:  python examples/custom_objective.py
"""

import tempfile
from dataclasses import replace
from pathlib import Path

from repro.apps import build_app
from repro.gpu.device import K20X, register_device
from repro.pipeline import Framework, PipelineConfig
from repro.search import (
    GAParams,
    fast_params,
    projected_gflops,
    register_objective,
)


def launch_averse_objective(problem, individual, device):
    """Projected GFLOPS minus a cost per generated kernel (launch latency)."""
    base = projected_gflops(problem, individual, device)
    return base - 0.05 * len(individual.groups)


def main() -> None:
    register_objective("launch_averse", launch_averse_objective)

    # --- GA parameter file round trip (the programmer's tuning surface) ----
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ga.params"
        params = fast_params(seed=23)
        params.write(path)
        text = path.read_text()
        text = text.replace("objective = 'projected_gflops'",
                            "objective = 'launch_averse'")
        path.write_text(text)
        params = GAParams.read(path)
    print(f"GA parameter file selects objective: {params.objective!r}")

    # --- a custom device: Kepler with doubled shared memory ----------------
    big_smem = replace(
        K20X,
        name="K20X-BIGSMEM",
        shared_mem_per_sm=96 * 1024,
        shared_mem_per_block=96 * 1024,
    )
    register_device(big_smem)

    app = build_app("B-CALM", scale=0.5)
    baseline_cfg = PipelineConfig(device=K20X, ga_params=params, verify=False)
    big_cfg = PipelineConfig(device=big_smem, ga_params=params, verify=False)

    on_k20x = Framework(app.program, baseline_cfg).run()
    on_big = Framework(app.program, big_cfg).run()

    print(f"\n{app.name} with the launch-averse objective:")
    print(f"  K20X (48 KB smem):        speedup {on_k20x.speedup:.3f}x, "
          f"{on_k20x.transform.new_kernel_count} new kernels")
    print(f"  K20X-BIGSMEM (96 KB):     speedup {on_big.speedup:.3f}x, "
          f"{on_big.transform.new_kernel_count} new kernels")
    print("\nA bigger shared memory relaxes the fusion constraint, which is "
          "the on-chip-capacity trend the paper's introduction points at.")


if __name__ == "__main__":
    main()

"""Quickstart: transform a three-kernel stencil mini-app end to end.

Parses a CudaLite program, runs the automated five-stage pipeline
(metadata -> targets -> graphs -> search -> codegen), verifies the
transformed program's output on the simulator, and prints the generated
CUDA plus the projected speedup.

Run:  python examples/quickstart.py
"""

from repro.cudalite import unparse
from repro.gpu.device import K20X
from repro.pipeline import Framework, PipelineConfig
from repro.search import fast_params

SOURCE = """
__global__ void smooth(double *A, const double *B, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
        for (int k = 0; k < nz; k++) {
            A[i][j][k] = 0.25 * (B[i + 1][j][k] + B[i - 1][j][k]
                                 + B[i][j + 1][k] + B[i][j - 1][k]);
        }
    }
}

__global__ void scale2(double *C, const double *B, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {
        for (int k = 0; k < nz; k++) {
            C[i][j][k] = B[i][j][k] * 2.0;
        }
    }
}

__global__ void combine(double *D, const double *A, const double *C,
                        int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {
        for (int k = 0; k < nz; k++) {
            D[i][j][k] = A[i][j][k] + C[i][j][k];
        }
    }
}

int main() {
    int nx = 64;
    int ny = 64;
    int nz = 16;
    double *A = cudaMalloc3D(nx, ny, nz);
    double *B = cudaMalloc3D(nx, ny, nz);
    double *C = cudaMalloc3D(nx, ny, nz);
    double *D = cudaMalloc3D(nx, ny, nz);
    deviceRandom(B, 42);
    dim3 grid(8, 8, 1);
    dim3 block(8, 8, 1);
    smooth<<<grid, block>>>(A, B, nx, ny, nz);
    scale2<<<grid, block>>>(C, B, nx, ny, nz);
    combine<<<grid, block>>>(D, A, C, nx, ny, nz);
    cudaDeviceSynchronize();
    return 0;
}
"""


def main() -> None:
    config = PipelineConfig(
        device=K20X,
        ga_params=fast_params(seed=7),
        verify=True,  # run original + transformed on the simulator, compare
    )
    framework = Framework(SOURCE, config)
    state = framework.run()

    print(framework.report())
    print()
    print("---- generated program " + "-" * 50)
    print(unparse(state.transform.program))
    print(f"projected speedup on {config.device.name}: {state.speedup:.3f}x")
    print(f"output verified bit-faithful: {state.verified}")


if __name__ == "__main__":
    main()

"""Kernel fission on the AWP-ODC-GPU earthquake-simulation stand-in.

The application's kernels are "almost fused" — large kernels updating many
independent components.  This example shows

1. Algorithm 2 in isolation: the array-dependency graph of a big kernel
   and its separable components;
2. the generated fission fragments (Figure 3's transformation);
3. why it matters: fusion-only vs fission+fusion end-to-end speedups.

Run:  python examples/seismic_fission.py
"""

from repro.analysis.deps import array_dependency_graph, separable_components
from repro.apps import build_app
from repro.cudalite import unparse
from repro.gpu.device import K20X
from repro.pipeline import Framework, PipelineConfig
from repro.search import fast_params
from repro.transform import fission_kernel


def main() -> None:
    app = build_app("AWP-ODC-GPU", scale=0.5)
    stress = app.program.kernel("stress_update_a")

    # --- Algorithm 2: dependency graph and separable components ------------
    graph = array_dependency_graph(stress)
    print(f"array-dependency graph of {stress.name!r}: "
          f"{graph.number_of_nodes()} arrays, {graph.number_of_edges()} edges")
    components = separable_components(stress)
    print(f"separable components ({len(components)}):")
    for component in components:
        print("  ", sorted(component))

    # --- the fission fragments (Figure 3) ----------------------------------
    fragments = fission_kernel(stress)
    print(f"\nfissioned {stress.name!r} into {len(fragments)} kernels:")
    print(unparse(fragments[0].kernel))

    # --- why fission matters here ------------------------------------------
    params = fast_params(seed=17)
    base = dict(device=K20X, ga_params=params, verify=False)

    fusion_only = Framework(
        app.program, PipelineConfig(enable_fission=False, **base)
    ).run()
    with_fission = Framework(
        app.program, PipelineConfig(enable_fission=True, **base)
    ).run()

    print(f"fusion only:      {fusion_only.speedup:.3f}x "
          f"({len(fusion_only.transform.fused_kernels)} fused kernels)")
    print(f"fission + fusion: {with_fission.speedup:.3f}x "
          f"({len(with_fission.transform.fused_kernels)} fused kernels, "
          f"{with_fission.search.avg_fissions_per_generation:.2f} lazy "
          "fissions/generation)")
    print("\nThe velocity kernel reads the stress arrays with a halo the "
          "stress kernels overwrite,\nso whole kernels cannot fuse; only "
          "component fragments expose the shared velocity reads.")


if __name__ == "__main__":
    main()

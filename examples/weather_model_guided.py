"""Programmer-guided transformation of the SCALE-LES weather-model stand-in.

Demonstrates the intervention workflow of §3.2:

1. run the pipeline stage by stage, inspecting each report;
2. dump the DDG/OEG as DOT files (the artifacts the programmer can amend);
3. intervene after the *targets* stage (hand-exclude a kernel) and enable
   the deep-loop codegen fix the paper's guided SCALE-LES run used;
4. compare automated vs guided speedups.

Run:  python examples/weather_model_guided.py
"""

import tempfile
from pathlib import Path

from repro.apps import build_app
from repro.gpu.device import K20X
from repro.pipeline import Framework, PipelineConfig
from repro.search import fast_params


def run_automated(app, workdir: str):
    config = PipelineConfig(
        device=K20X,
        ga_params=fast_params(seed=11),
        verify=False,
        workdir=workdir,
    )
    framework = Framework(app.program, config)

    # stage-by-stage execution with reports, exactly like the CLI's --until
    framework.run(until="metadata")
    print("[metadata]", framework.state.reports["metadata"])
    framework.run_stage("targets")
    targets = framework.state.targets
    print(f"[targets]  {len(targets.targets)} fusion targets, "
          f"{len(targets.excluded)} excluded")
    framework.run_stage("graphs")
    print("[graphs]  ", framework.state.reports["graphs"].splitlines()[0])
    framework.run_stage("search")
    print("[search]  ", framework.state.reports["search"])
    framework.run_stage("codegen")
    print("[codegen] ", framework.state.reports["codegen"])
    return framework.state


def run_guided(app):
    """The guided run: the programmer spotted that deep-nested-loop fusions
    were generated sub-optimally (the paper's K_07/K_15/K_16/K_23 story)
    and turns on inner-loop sharing; they also hand-exclude one kernel."""
    config = PipelineConfig(
        device=K20X,
        ga_params=fast_params(seed=11),
        verify=False,
        fusion_overrides={"merge_deep_loops": True},
    )
    framework = Framework(app.program, config)

    def exclude_one(state):
        # pretend the programmer knows K000 is not worth fusing
        decision = state.targets.decisions.get("K000")
        if decision is not None:
            decision.eligible = False
            decision.reason = "excluded by the programmer"

    framework.intervene("targets", exclude_one)
    return framework.run()


def main() -> None:
    app = build_app("SCALE-LES", scale=0.5)
    print(f"generated {app.name}: {len(app.program.kernels)} kernels, "
          f"domain {app.spec.domain}")

    with tempfile.TemporaryDirectory() as workdir:
        automated = run_automated(app, workdir)
        artifacts = sorted(p.name for p in Path(workdir).iterdir())
        print(f"\nstage artifacts written to {workdir}: {artifacts}")
        dot_head = (Path(workdir) / "oeg.dot").read_text().splitlines()[:5]
        print("OEG DOT head:", *dot_head, sep="\n  ")

    guided = run_guided(app)

    print()
    print(f"automated speedup: {automated.speedup:.3f}x")
    print(f"guided speedup:    {guided.speedup:.3f}x "
          "(deep-loop fix + manual exclusion)")


if __name__ == "__main__":
    main()
